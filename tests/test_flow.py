"""Tests for the end-to-end flow, verification, deployment and CLI."""

import io
import json

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.flow import FlowConfig, MatadorFlow, verify_design
from repro.flow.cli import main
from repro.flow.deploy import deployment_report, generate_host_driver, write_bundle
from repro.synthesis import implement_design
from _fixtures import random_model


def tiny_flow_config(**overrides):
    base = dict(
        dataset="kws6", n_train=220, n_test=80, clauses_per_class=14,
        T=10, s=4.0, epochs=4, verify_samples=4,
    )
    base.update(overrides)
    return FlowConfig(**base)


class TestFlowConfig:
    def test_roundtrip_dict(self):
        cfg = tiny_flow_config()
        clone = FlowConfig.from_dict(cfg.to_dict())
        assert clone == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig.from_dict({"clauses": 10})

    def test_accelerator_config_mapping(self):
        cfg = tiny_flow_config(bus_width=32, share_logic=False)
        acc = cfg.accelerator_config()
        assert acc.bus_width == 32
        assert acc.share_logic is False


class TestMatadorFlow:
    @pytest.fixture(scope="class")
    def completed(self):
        flow = MatadorFlow(tiny_flow_config())
        result = flow.run(verify=True)
        return flow, result

    def test_all_stages_timed(self, completed):
        _, result = completed
        for stage in ("load_data", "train", "analyze", "generate",
                      "implement", "verify"):
            assert stage in result.stage_seconds

    def test_accuracy_reasonable(self, completed):
        _, result = completed
        assert result.accuracy > 0.5  # 6-class problem, tiny model

    def test_verification_passes(self, completed):
        _, result = completed
        assert result.verification.passed, result.verification.summary()

    def test_table_row_fields(self, completed):
        _, result = completed
        row = result.table_row()
        assert row["Throughput (inf/s)"] > 0
        assert row["Latency (us)"] > 0
        assert row["Test Acc (%)"] == pytest.approx(100 * result.accuracy)

    def test_summary_text(self, completed):
        _, result = completed
        text = result.summary()
        assert "accuracy" in text
        assert "verify" in text

    def test_full_run_has_no_na_fields(self, completed):
        _, result = completed
        assert "n/a" not in result.summary()
        row = result.table_row()
        assert "n/a" not in row.values()
        assert row["Verified"] == "pass"

    def test_skipped_verify_renders_na(self):
        """verify=False must yield explicit n/a, not silently-missing fields."""
        flow = MatadorFlow(tiny_flow_config(epochs=1, clauses_per_class=4))
        result = flow.run(verify=False)
        row = result.table_row()
        assert row["Verified"] == "n/a"
        assert row["Throughput (inf/s)"] > 0  # completed stages stay numeric
        assert "verify:   n/a (stage skipped)" in result.summary()

    def test_train_only_result_renders_na_everywhere(self):
        flow = MatadorFlow(tiny_flow_config(epochs=1, clauses_per_class=4))
        flow.load_data()
        flow.train()
        result = flow.result
        row = result.table_row()
        assert row["Test Acc (%)"] > 0
        for column in ("LUTs", "Latency (us)", "Throughput (inf/s)",
                       "Total Pwr (W)", "Clock (MHz)", "Verified"):
            assert row[column] == "n/a", column
        text = result.summary()
        assert text.count("n/a (stage skipped)") == 4  # all but accuracy
        assert f"accuracy: {result.accuracy:.4f}" in text

    def test_table_row_columns_stable_across_skips(self):
        """Same column set whether stages ran or not (tabulator contract)."""
        full = MatadorFlow(tiny_flow_config(epochs=1, clauses_per_class=4))
        full_row = full.run(verify=True).table_row()
        trained = MatadorFlow(tiny_flow_config(epochs=1, clauses_per_class=4))
        trained.load_data()
        trained.train()
        assert list(full_row) == list(trained.result.table_row())

    def test_deploy_bundle(self, completed, tmp_path):
        flow, _ = completed
        files = flow.deploy(tmp_path / "bundle")
        names = {f.name for f in files}
        assert "host_driver.py" in names
        assert "model.json" in names
        assert "report.json" in names
        assert any(n.endswith(".v") for n in names)

    def test_stages_lazy_chain(self):
        """Calling implement() directly pulls in all prerequisites."""
        flow = MatadorFlow(tiny_flow_config(epochs=1, clauses_per_class=4))
        impl = flow.implement()
        assert impl.resources.luts > 0
        assert flow.result.model is not None

    def test_import_model_path(self, tmp_path, trained_model):
        path = tmp_path / "ext.json"
        trained_model.save(path)
        flow = MatadorFlow(tiny_flow_config(model_path=str(path), epochs=0))
        model = flow.train()
        assert model.n_clauses == trained_model.n_clauses

    def test_import_feature_mismatch(self, tmp_path):
        bad = random_model(n_features=10)
        path = tmp_path / "bad.json"
        bad.save(path)
        flow = MatadorFlow(tiny_flow_config(model_path=str(path)))
        with pytest.raises(ValueError):
            flow.train()


class TestModelFamilies:
    def test_coalesced_family_full_flow(self):
        flow = MatadorFlow(tiny_flow_config(
            model_family="coalesced", epochs=2, clauses_per_class=8,
        ))
        result = flow.run(verify=True)
        assert result.machine.__class__.__name__ == "CoalescedTsetlinMachine"
        assert result.verification.passed
        assert result.table_row()["LUTs"] > 0

    def test_convolutional_family_trains_and_skips_hardware(self):
        flow = MatadorFlow(tiny_flow_config(
            dataset="mnist", n_train=100, n_test=60,
            model_family="convolutional", epochs=1, clauses_per_class=4,
        ))
        result = flow.run()
        assert result.accuracy is not None
        assert result.model is None
        assert result.design is None
        assert result.table_row()["LUTs"] == "n/a"

    def test_convolutional_requires_image_dataset(self):
        flow = MatadorFlow(tiny_flow_config(model_family="convolutional"))
        with pytest.raises(ValueError, match="image_shape"):
            flow.train()

    def test_hardware_stage_rejects_conv_family(self):
        flow = MatadorFlow(tiny_flow_config(
            dataset="mnist", n_train=100, n_test=60,
            model_family="convolutional", epochs=1, clauses_per_class=4,
        ))
        with pytest.raises(RuntimeError, match="no frozen TMModel"):
            flow.generate()

    def test_hardware_stage_does_not_retrain_conv(self):
        """An already-trained conv machine must fail fast, not retrain."""
        flow = MatadorFlow(tiny_flow_config(
            dataset="mnist", n_train=100, n_test=60,
            model_family="convolutional", epochs=1, clauses_per_class=4,
        ))
        flow.run()
        machine = flow.result.machine
        train_seconds = flow.result.stage_seconds["train"]
        with pytest.raises(RuntimeError, match="no frozen TMModel"):
            flow.generate()
        assert flow.result.machine is machine
        assert flow.result.stage_seconds["train"] == train_seconds

    def test_unknown_family_rejected(self):
        flow = MatadorFlow(tiny_flow_config(model_family="quantum"))
        with pytest.raises(ValueError, match="model_family"):
            flow.train()


class TestVerifyDesign:
    def test_passes_on_good_design(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        report = verify_design(design, n_random_vectors=12)
        assert report.passed, report.summary()

    def test_detects_sabotaged_output(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        # Sabotage: invert the lowest result bit after generation.
        nl = design.netlist
        victim = nl.outputs["result[0]"]
        nl.set_output("result[0]", nl.g_not(victim))
        report = verify_design(design, n_random_vectors=24)
        assert not report.functional_ok
        assert not report.passed


class TestDeployArtifacts:
    def test_driver_source_compiles(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        src = generate_host_driver(design, clock_mhz=50.0)
        compile(src, "host_driver.py", "exec")  # syntax check
        assert "PacketSchedule" in src

    def test_report_structure(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        impl = implement_design(design)
        report = deployment_report(design, impl, accuracy=0.9)
        assert report["stream"]["packets_per_datapoint"] == design.n_packets
        assert report["test_accuracy"] == 0.9
        json.dumps(report)  # must be serializable

    def test_write_bundle_files(self, tiny_model, tmp_path):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        impl = implement_design(design)
        X = np.zeros((2, tiny_model.n_features), dtype=np.uint8)
        files = write_bundle(tmp_path, design, impl, tiny_model,
                             example_inputs=X)
        assert (tmp_path / "report.json").exists()
        assert (tmp_path / "matador_accel_tb.v").exists()
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["device"] == "xc7z020"


class TestCli:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_datasets(self):
        code, text = self.run_cli(["datasets"])
        assert code == 0
        assert "mnist" in text
        assert "kws6" in text

    def test_table2(self):
        code, text = self.run_cli(["table2"])
        assert code == 0
        assert "784-64-64-64-10" in text
        assert "200 clauses/class" in text

    def test_run_small(self, tmp_path):
        code, text = self.run_cli([
            "run", "--dataset", "kws6", "--clauses", "8", "--epochs", "1",
            "--train", "100", "--test", "50", "--json",
        ])
        assert code == 0
        assert "Throughput (inf/s)" in text

    def test_emit_writes_rtl(self, tmp_path):
        outdir = tmp_path / "rtl"
        code, text = self.run_cli([
            "emit", "--dataset", "kws6", "--clauses", "6", "--epochs", "1",
            "--train", "80", "--test", "40", "--outdir", str(outdir),
        ])
        assert code == 0
        assert (outdir / "matador_accel.v").exists()

    def test_config_file(self, tmp_path):
        cfg = tiny_flow_config(epochs=1, clauses_per_class=4)
        path = tmp_path / "flow.json"
        path.write_text(json.dumps(cfg.to_dict()))
        code, text = self.run_cli(["run", "--config", str(path), "--no-verify"])
        assert code == 0

    def test_bench_train_saves_payload_and_profile(self, tmp_path):
        save = tmp_path / "train_cli.json"
        code, text = self.run_cli([
            "bench-train", "--cold-epochs", "1", "--steady-epochs", "1",
            "--repeats", "1", "--save", str(save), "--profile",
        ])
        assert code == 0
        assert "training benchmark" in text
        payload = json.loads(save.read_text())
        assert payload["steady_speedup"] > 1.0
        profile = json.loads(
            (tmp_path / "train_cli_profile.json").read_text())
        assert profile["sort"] == "cumulative"
        assert 0 < len(profile["top"]) <= 20
        assert {"function", "cumtime_s", "ncalls"} <= set(profile["top"][0])

    def test_sweep_report_and_resume(self, tmp_path):
        report = tmp_path / "pareto.json"
        csv_path = tmp_path / "points.csv"
        argv = [
            "sweep", "--dataset", "kws6", "--clauses", "6,8", "--T", "8",
            "--s", "4.0", "--epochs", "1", "--train", "100", "--test", "50",
            "--bus-width", "32,64", "--jobs", "2", "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(report), "--csv", str(csv_path),
        ]
        code, text = self.run_cli(argv)
        assert code == 0
        assert "4 points (0 cached" in text
        payload = json.loads(report.read_text())
        assert payload["n_points"] == 4
        assert payload["pareto_keys"]
        assert csv_path.read_text().startswith("key,")

        first = report.read_bytes()
        code, text = self.run_cli(argv)
        assert code == 0
        assert "4 points (4 cached" in text
        assert report.read_bytes() == first  # resume is bit-identical

    def test_sweep_spec_file(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "base": {"dataset": "kws6", "n_train": 100, "n_test": 50,
                     "epochs": 1, "clauses_per_class": 6, "T": 8},
            "grid": {"bus_width": [32, 64]},
        }))
        code, text = self.run_cli([
            "sweep", "--spec", str(spec), "--no-cache", "--json",
        ])
        assert code == 0
        payload = json.loads(text)
        assert payload["n_points"] == 2

    def test_sweep_reports_errors(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"points": [{"dataset": "bogus"}]}))
        code, text = self.run_cli([
            "sweep", "--spec", str(spec), "--no-cache",
        ])
        assert code == 1
        assert "ERROR" in text

    def test_sweep_json_stdout_stays_parseable_on_errors(self, tmp_path):
        """--json must emit the report alone; errors live inside it."""
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"points": [{"dataset": "bogus"}]}))
        code, text = self.run_cli([
            "sweep", "--spec", str(spec), "--no-cache", "--json",
        ])
        assert code == 1
        payload = json.loads(text)  # the whole stdout is one JSON document
        assert payload["n_errors"] == 1
        assert "bogus" in payload["points"][0]["error"]

    def test_run_outdir_ignored_for_conv_family(self, tmp_path):
        outdir = tmp_path / "bundle"
        code, text = self.run_cli([
            "run", "--dataset", "mnist", "--model-family", "convolutional",
            "--clauses", "4", "--epochs", "1", "--train", "80", "--test",
            "40", "--outdir", str(outdir),
        ])
        assert code == 0
        assert "--outdir ignored" in text
        assert not outdir.exists()

    def test_serve_conv_family_disables_check(self):
        code, text = self.run_cli([
            "serve", "--dataset", "mnist", "--model-family", "convolutional",
            "--clauses", "4", "--epochs", "1", "--train", "80", "--test",
            "40", "--requests", "8", "--max-batch", "4",
        ])
        assert code == 0
        assert "differential checking disabled" in text

    def test_emit_rejects_conv_family(self, tmp_path):
        code, text = self.run_cli([
            "emit", "--dataset", "mnist", "--model-family", "convolutional",
            "--clauses", "4", "--epochs", "1", "--train", "80", "--test",
            "40", "--outdir", str(tmp_path / "rtl"),
        ])
        assert code == 2
        assert "no RTL translation" in text
