"""Tests for the batched cycle-simulation kernel."""

import numpy as np
import pytest

from repro.rtl import Netlist, bus_input
from repro.simulator.core import CompiledNetlist


class TestCombinational:
    def test_gates(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.set_output("and", nl.g_and(a, b))
        nl.set_output("or", nl.g_or(a, b))
        nl.set_output("xor", nl.g_xor(a, b))
        nl.set_output("not", nl.g_not(a))
        sim = CompiledNetlist(nl, batch=4)
        sim.set_input("a", np.array([0, 0, 1, 1], dtype=np.uint8))
        sim.set_input("b", np.array([0, 1, 0, 1], dtype=np.uint8))
        sim.settle()
        assert sim.output("and").tolist() == [0, 0, 0, 1]
        assert sim.output("or").tolist() == [0, 1, 1, 1]
        assert sim.output("xor").tolist() == [0, 1, 1, 0]
        assert sim.output("not").tolist() == [1, 1, 0, 0]

    def test_mux(self):
        nl = Netlist()
        s = nl.add_input("s")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.set_output("o", nl.g_mux(s, a, b))
        sim = CompiledNetlist(nl, batch=2)
        sim.set_input("s", np.array([1, 0], dtype=np.uint8))
        sim.set_input("a", 1)
        sim.set_input("b", 0)
        sim.settle()
        assert sim.output("o").tolist() == [1, 0]

    def test_deep_chain_settles_one_pass(self):
        nl = Netlist()
        x = nl.add_input("x")
        net = x
        for _ in range(50):
            net = nl.g_not(nl.g_not(nl.g_xor(net, nl.const(1))))
        nl.set_output("o", net)
        sim = CompiledNetlist(nl, batch=1)
        sim.set_input("x", 1)
        sim.settle()
        assert sim.output("o")[0] in (0, 1)

    def test_unknown_names_raise(self):
        nl = Netlist()
        nl.add_input("a")
        sim = CompiledNetlist(nl, batch=1)
        with pytest.raises(KeyError):
            sim.set_input("zzz", 1)
        with pytest.raises(KeyError):
            sim.output("zzz")
        with pytest.raises(KeyError):
            sim.set_bus("zzz", 3)


class TestSequential:
    def test_dff_basic_delay(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.set_output("q", nl.dff(d))
        sim = CompiledNetlist(nl, batch=1)
        out0 = sim.step(d=1)
        assert out0["q"][0] == 0  # init value visible before first edge
        out1 = sim.step(d=0)
        assert out1["q"][0] == 1  # captured the 1

    def test_dff_enable(self):
        nl = Netlist()
        d = nl.add_input("d")
        en = nl.add_input("en")
        nl.set_output("q", nl.dff(d, en=en))
        sim = CompiledNetlist(nl, batch=1)
        sim.step(d=1, en=0)
        assert sim.output("q")[0] == 0  # enable low: held
        sim.step(d=1, en=1)
        assert sim.output("q")[0] == 1

    def test_dff_sync_reset_wins(self):
        nl = Netlist()
        d = nl.add_input("d")
        rst = nl.add_input("rst")
        nl.set_output("q", nl.dff(d, rst=rst, init=1))
        sim = CompiledNetlist(nl, batch=1)
        sim.step(d=0, rst=0)
        assert sim.output("q")[0] == 0
        sim.step(d=1, rst=1)  # reset and data both asserted
        assert sim.output("q")[0] == 1  # reset wins, back to init

    def test_reset_restores_init(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.set_output("q", nl.dff(d, init=1))
        sim = CompiledNetlist(nl, batch=1)
        sim.step(d=0)
        assert sim.output("q")[0] == 0
        sim.reset()
        assert sim.output("q")[0] == 1
        assert sim.cycle == 0

    def test_counter(self):
        """2-bit counter built from xor/and counts clock edges."""
        nl = Netlist()
        b0 = nl.dff(nl.const(0), name="b0")
        b1 = nl.dff(nl.const(0), name="b1")
        nl.nodes[b0].fanins = (nl.g_not(b0), nl.const(1), nl.const(0))
        nl.nodes[b1].fanins = (nl.g_xor(b1, b0), nl.const(1), nl.const(0))
        nl.set_output("v[0]", b0)
        nl.set_output("v[1]", b1)
        sim = CompiledNetlist(nl, batch=1)
        seen = []
        for _ in range(6):
            seen.append(int(sim.output_bus("v")[0]))
            sim.clock()
        assert seen == [0, 1, 2, 3, 0, 1]


class TestBatch:
    def test_lanes_independent(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.set_output("q", nl.dff(d))
        sim = CompiledNetlist(nl, batch=3)
        sim.step(d=np.array([1, 0, 1], dtype=np.uint8))
        assert sim.output("q").tolist() == [1, 0, 1]

    def test_bus_io(self):
        nl = Netlist()
        a = bus_input(nl, "a", 8)
        for i, bit in enumerate(a):
            nl.set_output(f"o[{i}]", bit)
        sim = CompiledNetlist(nl, batch=4)
        vals = np.array([0, 1, 170, 255], dtype=np.uint64)
        sim.set_bus("a", vals)
        sim.settle()
        assert np.array_equal(sim.output_bus("o"), vals.astype(np.int64))

    def test_signed_bus_read(self):
        nl = Netlist()
        a = bus_input(nl, "a", 4)
        for i, bit in enumerate(a):
            nl.set_output(f"o[{i}]", bit)
        sim = CompiledNetlist(nl, batch=2)
        sim.set_bus("a", np.array([15, 7], dtype=np.uint64))
        sim.settle()
        assert sim.output_bus("o", signed=True).tolist() == [-1, 7]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CompiledNetlist(Netlist(), batch=0)

    def test_outputs_dict_mixes_scalars_and_buses(self):
        nl = Netlist()
        a = bus_input(nl, "a", 2)
        nl.set_output("o[0]", a[0])
        nl.set_output("o[1]", a[1])
        nl.set_output("flag", nl.g_and(a[0], a[1]))
        sim = CompiledNetlist(nl, batch=1)
        out = sim.step(a=3)
        assert out["o"][0] == 3
        assert out["flag"][0] == 1
