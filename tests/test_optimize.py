"""Tests for netlist optimization passes (sharing, dead-code removal)."""

import pytest

from repro.flow.verify import netlists_equivalent
from repro.rtl import Netlist, optimize, share_logic, strip_dead


def duplicated_design():
    """A netlist with sharing disabled: identical cones instantiated twice."""
    nl = Netlist("dup", share=False)
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    g1 = nl.g_and(a, b)
    g2 = nl.g_and(a, b)          # duplicate
    h1 = nl.g_or(g1, c)
    h2 = nl.g_or(g2, c)          # duplicate via duplicate child
    nl.set_output("o1", h1)
    nl.set_output("o2", h2)
    return nl


class TestShareLogic:
    def test_merges_duplicates(self):
        nl = duplicated_design()
        shared = share_logic(nl)
        assert shared.gate_count() < nl.gate_count()
        assert shared.gate_count() == 2

    def test_preserves_behavior(self):
        nl = duplicated_design()
        assert netlists_equivalent(nl, share_logic(nl), n_cycles=16)

    def test_registers_preserved(self):
        nl = Netlist("regs", share=False)
        a = nl.add_input("a")
        r1 = nl.dff(a, init=1)
        r2 = nl.dff(a, init=0)
        nl.set_output("o1", r1)
        nl.set_output("o2", r2)
        shared = share_logic(nl)
        assert shared.register_count() == 2  # registers are never merged
        assert netlists_equivalent(nl, shared, n_cycles=16)

    def test_blocks_carried_over(self):
        nl = Netlist("blk", share=False)
        a = nl.add_input("a")
        b = nl.add_input("b")
        with nl.block("hcb0"):
            g = nl.g_and(a, b)
        nl.set_output("o", g)
        shared = share_logic(nl)
        assert "hcb0" in shared.blocks()


class TestStripDead:
    def test_removes_unreachable(self):
        nl = Netlist("dead")
        a = nl.add_input("a")
        b = nl.add_input("b")
        used = nl.g_and(a, b)
        nl.g_or(a, b)  # dead
        nl.g_xor(a, b)  # dead
        nl.set_output("o", used)
        cleaned = strip_dead(nl)
        assert cleaned.gate_count() == 1
        assert netlists_equivalent(nl, cleaned, n_cycles=8)

    def test_keeps_register_feeding_output(self):
        nl = Netlist("regdead")
        a = nl.add_input("a")
        r = nl.dff(nl.g_not(a))
        nl.dff(a)  # dead register
        nl.set_output("o", r)
        cleaned = strip_dead(nl)
        assert cleaned.register_count() == 1

    def test_inputs_survive(self):
        nl = Netlist("io")
        a = nl.add_input("a")
        nl.add_input("unused")
        nl.set_output("o", nl.g_not(a))
        cleaned = strip_dead(nl)
        assert set(cleaned.inputs) == {"a", "unused"}


class TestOptimize:
    def test_report_counts(self):
        nl = duplicated_design()
        cleaned, report = optimize(nl)
        assert report.gates_before == 4
        assert report.gates_after == 2
        assert report.gates_saved == 2
        assert report.gate_saving_ratio == pytest.approx(0.5)
        assert "gates 4 -> 2" in report.summary()

    def test_equivalence_after_full_optimize(self):
        nl = duplicated_design()
        cleaned, _ = optimize(nl)
        assert netlists_equivalent(nl, cleaned, n_cycles=16)

    def test_optimize_on_generated_design(self, tiny_model):
        """A DON'T TOUCH accelerator optimizes down toward the shared one."""
        from repro.accelerator import AcceleratorConfig, generate_accelerator

        dt = generate_accelerator(
            tiny_model, AcceleratorConfig(bus_width=8, share_logic=False)
        )
        shared = generate_accelerator(
            tiny_model, AcceleratorConfig(bus_width=8, share_logic=True)
        )
        optimized, report = optimize(dt.netlist)
        assert report.gates_saved >= 0
        assert optimized.gate_count() <= shared.netlist.gate_count() * 1.2
