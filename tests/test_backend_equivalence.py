"""Backend equivalence: reference and vectorized must be bit-identical.

The vectorized backend's whole contract is "same trained model, less
time": identical RNG stream consumption, identical automaton arithmetic,
therefore identical include matrices and predictions for a given seed.
These tests pin that contract for all three machine variants and all RNG
kinds, plus the serialization/staleness paths around it.
"""

import numpy as np
import pytest

from repro.tsetlin import (
    AutomataTeam,
    CoalescedTsetlinMachine,
    ConvolutionalTsetlinMachine,
    TsetlinMachine,
    make_rng,
)
from repro.tsetlin.backend import BACKENDS, ReferenceBackend, VectorizedBackend, make_backend


def _dataset(n=60, f=32, n_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    protos = rng.random((n_classes, f)) < 0.5
    y = rng.integers(0, n_classes, n)
    flip = rng.random((n, f)) < 0.08
    X = (protos[y] ^ flip).astype(np.uint8)
    return X, y


class TestFlatEquivalence:
    @pytest.mark.parametrize("rng_kind", ["numpy", "xorshift", "cyclostationary"])
    def test_bit_identical_training(self, rng_kind):
        X, y = _dataset()
        machines = {}
        for backend in ("reference", "vectorized"):
            tm = TsetlinMachine(
                3, 32, n_clauses=10, T=6, s=3.5,
                rng=make_rng(rng_kind, seed=11), backend=backend,
            )
            tm.fit(X, y, epochs=3)
            machines[backend] = tm
        ref, vec = machines["reference"], machines["vectorized"]
        assert np.array_equal(ref.team.state, vec.team.state)
        assert np.array_equal(ref.includes(), vec.includes())
        assert np.array_equal(ref.predict(X), vec.predict(X))
        assert np.array_equal(ref.class_sums(X), vec.class_sums(X))

    def test_boost_false_also_identical(self):
        X, y = _dataset()
        trained = [
            TsetlinMachine(3, 32, n_clauses=8, T=5, s=4.0, seed=3,
                           boost_true_positive=False, backend=b).fit(X, y, epochs=2)
            for b in ("reference", "vectorized")
        ]
        assert np.array_equal(trained[0].team.state, trained[1].team.state)

    def test_training_log_matches(self):
        X, y = _dataset()
        logs = []
        for b in ("reference", "vectorized"):
            tm = TsetlinMachine(3, 32, n_clauses=8, T=5, seed=2, backend=b)
            tm.fit(X, y, epochs=2)
            logs.append([e["train_accuracy"] for e in tm.log.epochs])
        assert logs[0] == logs[1]


class TestCoalescedEquivalence:
    def test_bit_identical_training(self):
        X, y = _dataset()
        machines = [
            CoalescedTsetlinMachine(3, 32, n_clauses=14, T=8, seed=21,
                                    backend=b).fit(X, y, epochs=3)
            for b in ("reference", "vectorized")
        ]
        assert np.array_equal(machines[0].team.state, machines[1].team.state)
        assert np.array_equal(machines[0].weights, machines[1].weights)
        assert np.array_equal(machines[0].predict(X), machines[1].predict(X))


class TestConvolutionalEquivalence:
    def test_bit_identical_training(self):
        rng = np.random.default_rng(5)
        X = (rng.random((30, 64)) < 0.5).astype(np.uint8)
        y = rng.integers(0, 2, 30)
        machines = [
            ConvolutionalTsetlinMachine(2, (8, 8), patch_shape=(5, 5),
                                        n_clauses=8, T=6, seed=13,
                                        backend=b).fit(X, y, epochs=2)
            for b in ("reference", "vectorized")
        ]
        assert np.array_equal(machines[0].team.state, machines[1].team.state)
        assert np.array_equal(machines[0].predict(X), machines[1].predict(X))


class TestBackendPlumbing:
    def test_registry_and_factory(self):
        assert set(BACKENDS) >= {"reference", "vectorized"}
        team = AutomataTeam((2, 4, 8), n_states=9)
        assert isinstance(make_backend("reference", team), ReferenceBackend)
        assert isinstance(make_backend(VectorizedBackend, team), VectorizedBackend)
        be = VectorizedBackend(team)
        assert make_backend(be, team) is be
        with pytest.raises(ValueError):
            make_backend("no-such-backend", team)
        with pytest.raises(ValueError):
            make_backend(be, AutomataTeam((2, 4, 8), n_states=9))

    def test_batch_outputs_agree_on_random_state(self):
        team = AutomataTeam((3, 6, 16), n_states=5, rng=make_rng("numpy", 4))
        ref = ReferenceBackend(team)
        vec = VectorizedBackend(team)
        L = np.random.default_rng(0).random((9, 16)) < 0.5
        for empty in (0, 1):
            assert np.array_equal(
                ref.batch_outputs(L, empty_output=empty),
                vec.batch_outputs(L, empty_output=empty),
            )

    def test_vectorized_sync_after_external_mutation(self):
        team = AutomataTeam((2, 4, 12), n_states=7, rng=make_rng("numpy", 8))
        vec = VectorizedBackend(team)
        team.state[:] = 2 * team.n_states  # all include, behind the cache
        assert not vec.includes().all()  # cache is stale by design
        vec.sync()
        assert vec.includes().all()


class TestSerializationRoundTrip:
    def test_automata_team_round_trip(self):
        team = AutomataTeam((3, 6, 10), n_states=31, rng=make_rng("numpy", 17))
        team.state[1, 2, 3] = 60
        clone = AutomataTeam.from_dict(team.to_dict())
        assert clone.n_states == team.n_states
        assert clone.shape == team.shape
        assert clone.state.dtype == team.state.dtype
        assert np.array_equal(clone.state, team.state)

    def test_trained_state_round_trips_through_backend(self):
        X, y = _dataset()
        tm = TsetlinMachine(3, 32, n_clauses=8, T=5, seed=2,
                            backend="vectorized")
        tm.fit(X, y, epochs=2)
        clone = TsetlinMachine(3, 32, n_clauses=8, T=5, seed=999,
                               backend="vectorized")
        clone.team.state[:] = AutomataTeam.from_dict(tm.team.to_dict()).state
        clone.backend.sync()
        assert np.array_equal(clone.includes(), tm.includes())
        assert np.array_equal(clone.predict(X), tm.predict(X))
