"""Tests for the multiclass Tsetlin Machine trainer."""

import numpy as np
import pytest

from repro.tsetlin import TsetlinMachine


def separable_data(n=160, n_features=16, n_classes=2, seed=0):
    """Class = parity-free simple rule on two feature bits."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, n_features)).astype(np.uint8)
    if n_classes == 2:
        y = X[:, 0].astype(np.int64)
    else:
        y = (X[:, 0] + 2 * X[:, 1]).astype(np.int64) % n_classes
    return X, y


class TestValidation:
    def test_odd_clause_count_rejected(self):
        with pytest.raises(ValueError):
            TsetlinMachine(2, 4, n_clauses=5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            TsetlinMachine(1, 4)

    def test_bad_T(self):
        with pytest.raises(ValueError):
            TsetlinMachine(2, 4, T=0)

    def test_bad_s(self):
        with pytest.raises(ValueError):
            TsetlinMachine(2, 4, s=0.5)

    def test_wrong_feature_count(self):
        tm = TsetlinMachine(2, 8)
        with pytest.raises(ValueError):
            tm.predict(np.zeros((3, 9), dtype=np.uint8))

    def test_labels_out_of_range(self):
        tm = TsetlinMachine(2, 4)
        X = np.zeros((4, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            tm.fit(X, np.array([0, 1, 2, 0]), epochs=1)

    def test_length_mismatch(self):
        tm = TsetlinMachine(2, 4)
        with pytest.raises(ValueError):
            tm.fit(np.zeros((4, 4), dtype=np.uint8), np.array([0, 1]), epochs=1)


class TestLearning:
    def test_learns_single_bit_rule(self):
        X, y = separable_data()
        tm = TsetlinMachine(2, 16, n_clauses=8, T=8, s=3.0, seed=1)
        tm.fit(X, y, epochs=6)
        assert tm.evaluate(X, y) > 0.95

    def test_learns_multiclass(self):
        X, y = separable_data(n=240, n_classes=4, seed=2)
        tm = TsetlinMachine(4, 16, n_clauses=10, T=8, s=3.0, seed=1)
        tm.fit(X, y, epochs=10)
        assert tm.evaluate(X, y) > 0.85

    def test_log_records_epochs(self):
        X, y = separable_data(n=60)
        tm = TsetlinMachine(2, 16, n_clauses=4, T=4, seed=0)
        tm.fit(X, y, epochs=3, X_val=X[:20], y_val=y[:20])
        assert len(tm.log) == 3
        assert tm.log.best_val() is not None

    def test_progress_callback(self):
        X, y = separable_data(n=40)
        tm = TsetlinMachine(2, 16, n_clauses=4, T=4, seed=0)
        seen = []
        tm.fit(X, y, epochs=2, progress=lambda e, entry: seen.append(e))
        assert seen == [0, 1]

    def test_seed_reproducibility(self):
        X, y = separable_data(n=80)
        tm1 = TsetlinMachine(2, 16, n_clauses=6, T=6, seed=9)
        tm2 = TsetlinMachine(2, 16, n_clauses=6, T=6, seed=9)
        tm1.fit(X, y, epochs=2)
        tm2.fit(X, y, epochs=2)
        assert np.array_equal(tm1.team.state, tm2.team.state)


class TestInference:
    def test_class_sums_shape(self):
        tm = TsetlinMachine(3, 8, n_clauses=4, seed=0)
        sums = tm.class_sums(np.zeros((5, 8), dtype=np.uint8))
        assert sums.shape == (5, 3)

    def test_empty_clauses_do_not_vote_in_inference(self):
        tm = TsetlinMachine(2, 8, n_clauses=4, seed=0)
        tm.team.state[:] = 1  # everything excluded -> all clauses empty
        sums = tm.class_sums(np.ones((2, 8), dtype=np.uint8))
        assert (sums == 0).all()

    def test_polarity_alternates(self):
        tm = TsetlinMachine(2, 4, n_clauses=6, seed=0)
        assert tm.polarity.tolist() == [1, -1, 1, -1, 1, -1]

    def test_predict_matches_argmax_of_sums(self):
        X, y = separable_data(n=50)
        tm = TsetlinMachine(2, 16, n_clauses=8, T=8, seed=3)
        tm.fit(X, y, epochs=2)
        sums = tm.class_sums(X)
        assert np.array_equal(tm.predict(X), np.argmax(sums, axis=1))

    def test_1d_input(self):
        tm = TsetlinMachine(2, 8, n_clauses=4, seed=0)
        pred = tm.predict(np.zeros(8, dtype=np.uint8))
        assert pred.shape == (1,)


class TestExport:
    def test_export_matches_machine_predictions(self):
        X, y = separable_data(n=100)
        tm = TsetlinMachine(2, 16, n_clauses=8, T=8, seed=4)
        tm.fit(X, y, epochs=3)
        model = tm.export_model("unit")
        assert np.array_equal(model.predict(X), tm.predict(X))

    def test_export_metadata(self):
        tm = TsetlinMachine(2, 8, n_clauses=4, T=7, s=3.5, seed=0)
        model = tm.export_model("meta")
        assert model.name == "meta"
        assert model.hyperparameters["T"] == 7
        assert model.hyperparameters["s"] == 3.5

    def test_export_is_frozen_copy(self):
        tm = TsetlinMachine(2, 8, n_clauses=4, seed=0)
        model = tm.export_model()
        tm.team.state[:] = 2 * tm.team.n_states  # mutate machine afterwards
        assert model.include.sum() == 0 or model.include.sum() < model.include.size
        with pytest.raises(ValueError):
            model.include[0, 0, 0] = True  # read-only
