"""Fabric tests: pool, routing, gateway, failover, rolling promotion e2e.

The deterministic contracts run on inline replicas (no processes, exact
dispatch points); a smaller section drives real worker processes through
the same paths, including killing a worker mid-traffic to exercise
in-flight failover.  The rolling-promotion end-to-end test is the
acceptance check: v1 -> v2 across every replica with zero dropped
requests, then a fleet-wide rollback to v1.
"""

import multiprocessing

import numpy as np
import pytest

from _fixtures import random_model
from repro.serving import fabric
from repro.serving import (
    Backpressure,
    Gateway,
    InferenceEngine,
    Registry,
    ReplicaError,
    ReplicaPool,
    fabric_benchmark,
    format_fabric_benchmark,
)
from repro.streaming import RollingPromoter


def _engine(seed=0, version=1, **kwargs):
    return InferenceEngine.from_model(random_model(seed=seed, **kwargs),
                                      version=version)


def _traffic(engine, n, seed=1):
    rng = np.random.default_rng(seed)
    return (rng.random((n, engine.n_features)) < 0.5).astype(np.uint8)


# ----------------------------------------------------------------------
# ReplicaPool
# ----------------------------------------------------------------------
class TestReplicaPool:
    def test_inline_pool_shape_and_versions(self):
        engine = _engine(version=3)
        with ReplicaPool(engine, n_replicas=3, mode="inline") as pool:
            assert len(pool) == 3
            assert pool.versions() == [3, 3, 3]
            assert [r.index for r in pool.healthy()] == [0, 1, 2]

    def test_from_registry_serves_published_snapshot(self):
        registry = Registry()
        registry.publish("m", random_model(seed=2))
        pool = ReplicaPool.from_registry(registry, "m", n_replicas=2,
                                         mode="inline")
        assert pool.versions() == [1, 1]
        assert pool.engine is registry.engine("m")

    def test_validation(self):
        engine = _engine()
        with pytest.raises(ValueError):
            ReplicaPool(engine, n_replicas=0, mode="inline")
        with pytest.raises(ValueError):
            ReplicaPool(engine, n_replicas=1, mode="threads")
        with pytest.raises(ValueError):
            ReplicaPool(engine, n_replicas=1, mode="inline", max_batch=0)

    def test_swap_all_moves_every_healthy_replica(self):
        v1, v2 = _engine(version=1), _engine(version=2)
        pool = ReplicaPool(v1, n_replicas=3, mode="inline")
        pool.replicas[1].healthy = False
        pool.swap_all(v2)
        assert pool.versions() == [2, 1, 2]
        assert pool.engine is v2


# ----------------------------------------------------------------------
# Gateway: routing, dispatch, results
# ----------------------------------------------------------------------
class TestGateway:
    def test_results_match_direct_engine_predict(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=3, mode="inline")
        gateway = Gateway(pool, max_batch=4)
        X = _traffic(engine, 26)
        tickets = gateway.submit_many(X)
        gateway.flush()
        expected = engine.predict(X)
        assert [t.prediction for t in tickets] == expected.tolist()
        sums = engine.class_sums(X)
        for i, t in enumerate(tickets):
            assert np.array_equal(t.class_sums, sums[i])
            assert t.version == engine.version

    def test_round_robin_covers_every_replica(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 3, mode="inline"), max_batch=2)
        tickets = gateway.submit_many(_traffic(engine, 12))
        gateway.flush()
        by_replica = {t.replica for t in tickets}
        assert by_replica == {0, 1, 2}
        assert gateway.stats.n_samples == 12

    def test_keyed_routing_is_deterministic_and_sticky(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 3, mode="inline"), max_batch=64)
        X = _traffic(engine, 9)
        tickets = gateway.submit_many(X, keys=[7] * 9)
        gateway.flush()
        assert {t.replica for t in tickets} == {7 % 3}

    def test_keyed_routing_fails_over_past_unhealthy(self):
        engine = _engine()
        pool = ReplicaPool(engine, 3, mode="inline")
        pool.replicas[1].healthy = False
        gateway = Gateway(pool, max_batch=4)
        tickets = gateway.submit_many(_traffic(engine, 8), keys=[1] * 8)
        gateway.flush()
        assert {t.replica for t in tickets} == {2}  # 1 -> probe -> 2
        assert gateway.stats.failovers == 8

    def test_no_healthy_replica_raises(self):
        engine = _engine()
        pool = ReplicaPool(engine, 2, mode="inline")
        for r in pool.replicas:
            r.healthy = False
        gateway = Gateway(pool, max_batch=4)
        with pytest.raises(ReplicaError):
            gateway.submit(_traffic(engine, 1)[0])

    def test_size_trigger_dispatches_without_flush(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 1, mode="inline"), max_batch=3)
        tickets = gateway.submit_many(_traffic(engine, 3), keys=[0, 0, 0])
        # Size trigger dispatched; inline replicas compute on dispatch,
        # the tickets resolve on collection during flush.
        assert gateway.pending == 3
        gateway.flush()
        assert all(t.done for t in tickets)

    def test_ticket_result_forces_flush(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline"), max_batch=64)
        ticket = gateway.submit(_traffic(engine, 1)[0])
        assert not ticket.done
        assert ticket.result() is not None
        assert ticket.done

    def test_submit_validation(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline"))
        with pytest.raises(ValueError):
            gateway.submit(_traffic(engine, 2))         # batch into submit()
        with pytest.raises(ValueError):
            gateway.submit(np.zeros(5, dtype=np.uint8))  # wrong width
        with pytest.raises(ValueError):
            gateway.submit_many(np.zeros((2, 5), dtype=np.uint8))
        with pytest.raises(ValueError):
            gateway.submit_many(_traffic(engine, 2), keys=[1])

    def test_deadline_dispatches_every_queue_not_just_the_routed_one(self):
        # Sticky routing must not let another replica's sub-max_batch
        # tail wait past the deadline: every queue's oldest request is
        # checked on every submit, like the single-queue Batcher.
        engine = _engine()
        clock = iter([0.0, 0.5, 0.5]).__next__
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline"),
                          max_batch=64, max_delay=0.1, clock=clock)
        stale = gateway.submit(_traffic(engine, 1)[0], key=1)   # replica 1
        fresh = gateway.submit(_traffic(engine, 1)[0], key=0)   # replica 0
        # Submitting to replica 0 at t=0.5 dispatched replica 1's queue.
        gateway._collect_from(gateway.pool.replicas[1])
        assert stale.done and stale.replica == 1
        assert not fresh.done

    def test_pending_counter_tracks_queue_and_inflight(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline"), max_batch=4)
        gateway.submit_many(_traffic(engine, 10))
        assert gateway.pending == 10    # 8 dispatched (in flight) + 2 queued
        gateway.flush()
        assert gateway.pending == 0

    def test_context_manager_flushes(self):
        engine = _engine()
        with Gateway(ReplicaPool(engine, 2, mode="inline"),
                     max_batch=64) as gateway:
            tickets = gateway.submit_many(_traffic(engine, 5))
        assert all(t.done for t in tickets)


class TestBackpressure:
    def test_error_policy_raises_when_full(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline", max_batch=8),
                          max_batch=8, max_queue=4, overflow="error")
        X = _traffic(engine, 10)
        with pytest.raises(Backpressure):
            gateway.submit_many(X)
        assert gateway.pending <= 4

    def test_wait_policy_bounds_pending_and_drops_nothing(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, 2, mode="inline", max_batch=4),
                          max_batch=4, max_queue=6, overflow="wait")
        X = _traffic(engine, 50)
        tickets = gateway.submit_many(X)
        assert gateway.pending <= 6
        gateway.flush()
        expected = engine.predict(X)
        assert [t.prediction for t in tickets] == expected.tolist()


class TestGatewayObservers:
    def test_observers_see_every_collected_batch(self):
        engine = _engine()
        seen = []
        gateway = Gateway(
            ReplicaPool(engine, 2, mode="inline"), max_batch=4,
            observers=[lambda X, s, p: seen.append(len(X))],
        )
        gateway.submit_many(_traffic(engine, 10))
        gateway.flush()
        assert sum(seen) == 10

    def test_observer_errors_are_isolated(self):
        engine = _engine()
        calls = []

        def bad(X, sums, preds):
            raise RuntimeError("metrics backend down")

        gateway = Gateway(
            ReplicaPool(engine, 2, mode="inline"), max_batch=4,
            observers=[bad, lambda X, s, p: calls.append(len(X))],
        )
        tickets = gateway.submit_many(_traffic(engine, 8))
        gateway.flush()
        assert all(t.done for t in tickets)
        assert sum(calls) == 8          # the healthy observer still ran
        assert gateway.stats.observer_errors == gateway.stats.n_batches
        assert gateway.observer_errors


# ----------------------------------------------------------------------
# Process-mode fabric
# ----------------------------------------------------------------------
class TestProcessFabric:
    def test_process_replicas_match_inline_results(self):
        engine = _engine()
        X = _traffic(engine, 20)
        with ReplicaPool(engine, n_replicas=2, mode="process") as pool:
            gateway = Gateway(pool, max_batch=8)
            tickets = gateway.submit_many(X)
            gateway.flush()
            assert [t.prediction for t in tickets] == \
                engine.predict(X).tolist()
            report = gateway.health_check()
        assert all(entry["healthy"] for entry in report.values())

    def test_dead_worker_fails_over_without_dropping_requests(self):
        engine = _engine()
        X = _traffic(engine, 12)
        with ReplicaPool(engine, n_replicas=2, mode="process") as pool:
            gateway = Gateway(pool, max_batch=4)
            victim = pool.replicas[0]
            victim._proc.terminate()
            victim._proc.join(timeout=5.0)
            tickets = gateway.submit_many(X, keys=[0] * len(X))
            gateway.flush()
            assert all(t.done for t in tickets)
            assert {t.replica for t in tickets} == {1}
            assert not victim.healthy
            assert gateway.stats.failovers + gateway.stats.rerouted_batches > 0

    def test_inflight_work_is_rerouted_when_worker_dies(self):
        engine = _engine()
        X = _traffic(engine, 4)
        with ReplicaPool(engine, n_replicas=2, mode="process") as pool:
            gateway = Gateway(pool, max_batch=4)
            tickets = gateway.submit_many(X, keys=[0] * 4)  # dispatched to 0
            victim = pool.replicas[0]
            victim._proc.terminate()
            victim._proc.join(timeout=5.0)
            # Force the collect path to discover the death: drain the OS
            # pipe by collecting, which raises inside and reroutes.
            gateway.flush()
            assert all(t.done for t in tickets)
            assert [t.prediction for t in tickets] == \
                engine.predict(X).tolist()

    def test_rolling_swap_in_process_mode(self):
        v1 = _engine(version=1)
        v2 = InferenceEngine.from_model(random_model(seed=9), version=2)
        with ReplicaPool(v1, n_replicas=2, mode="process") as pool:
            gateway = Gateway(pool, max_batch=4)
            before = gateway.submit_many(_traffic(v1, 6))
            events = gateway.rolling_swap(v2)
            assert [e["version"] for e in events] == [2, 2]
            assert pool.versions() == [2, 2]
            # Requests accepted before the roll resolved on v1.
            assert all(t.done and t.version == 1 for t in before)
            after = gateway.submit_many(_traffic(v1, 6))
            gateway.flush()
            assert {t.version for t in after} == {2}


# ----------------------------------------------------------------------
# Zero-copy shared-memory transport
# ----------------------------------------------------------------------
def _ring_names(pool):
    """Shared-memory segment names owned by a pool's replicas."""
    return [
        name
        for replica in pool.replicas
        if getattr(replica, "_ring", None) is not None
        for name in replica._ring.spec()["names"]
    ]


def _segment_exists(name):
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestZeroCopyTransport:
    def test_shm_transport_engages_and_matches_inline(self):
        engine = _engine()
        X = _traffic(engine, 40)
        with ReplicaPool(engine, n_replicas=2, mode="process",
                         max_batch=8) as pool:
            if any(r.transport != "shm" for r in pool.replicas):
                pytest.skip("shared memory unavailable on this platform")
            gateway = Gateway(pool, max_batch=8)
            tickets = gateway.submit_many(X)
            gateway.flush()
            assert [t.prediction for t in tickets] == \
                engine.predict(X).tolist()

    def test_forced_pickle_transport_matches(self):
        engine = _engine()
        X = _traffic(engine, 20)
        with ReplicaPool(engine, n_replicas=2, mode="process", max_batch=8,
                         transport="pickle") as pool:
            assert all(r.transport == "pickle" for r in pool.replicas)
            gateway = Gateway(pool, max_batch=8)
            tickets = gateway.submit_many(X)
            gateway.flush()
            assert [t.prediction for t in tickets] == \
                engine.predict(X).tolist()

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            ReplicaPool(_engine(), n_replicas=1, transport="carrier-pigeon")

    def test_oversize_batch_falls_back_to_pickle_per_batch(self):
        engine = _engine()
        X = _traffic(engine, 12)
        with ReplicaPool(engine, n_replicas=1, mode="process",
                         max_batch=4) as pool:
            replica = pool.replicas[0]
            if replica.transport != "shm":
                pytest.skip("shared memory unavailable on this platform")
            replica.dispatch(1, X)  # 12 rows > 4-row slots
            assert replica._pending[0][3] is None  # no slot consumed
            req_id, preds, _, _ = replica.collect()
            assert req_id == 1
            assert preds.tolist() == engine.predict(X).tolist()

    def test_geometry_changing_swap_disables_ring_then_reenables(self):
        v1 = _engine(version=1)
        wide = InferenceEngine.from_model(
            random_model(seed=3, n_features=v1.n_features + 2), version=2)
        X = _traffic(wide, 10)
        with ReplicaPool(v1, n_replicas=1, mode="process",
                         max_batch=8) as pool:
            replica = pool.replicas[0]
            if replica.transport != "shm":
                pytest.skip("shared memory unavailable on this platform")
            replica.swap(wide)
            assert not replica._shm_ok  # ring sized for the old snapshot
            replica.dispatch(1, X)
            assert replica._pending[0][3] is None
            assert replica.collect()[1].tolist() == \
                wide.predict(X).tolist()
            replica.swap(_engine(version=3))  # original geometry again
            assert replica._shm_ok

    def test_close_unlinks_every_segment(self):
        with ReplicaPool(_engine(), n_replicas=2, mode="process",
                         max_batch=8) as pool:
            names = _ring_names(pool)
            if not names:
                pytest.skip("shared memory unavailable on this platform")
            assert all(_segment_exists(n) for n in names)
        assert not any(_segment_exists(n) for n in names)

    def test_close_unlinks_segments_of_worker_killed_mid_batch(self):
        engine = _engine()
        X = _traffic(engine, 8)
        with ReplicaPool(engine, n_replicas=2, mode="process",
                         max_batch=8) as pool:
            names = _ring_names(pool)
            if not names:
                pytest.skip("shared memory unavailable on this platform")
            gateway = Gateway(pool, max_batch=8)
            tickets = gateway.submit_many(X, keys=[0] * len(X))
            victim = pool.replicas[0]  # holds the in-flight shm batch
            victim._proc.kill()
            victim._proc.join(timeout=5.0)
            gateway.flush()  # failover reroutes off the parent-side copy
            assert [t.prediction for t in tickets] == \
                engine.predict(X).tolist()
            # The first reply can race ahead of the SIGKILL; a second
            # round routed at the victim must detect the death, fail
            # over, and still answer every request.
            again = gateway.submit_many(X, keys=[0] * len(X))
            gateway.flush()
            assert [t.prediction for t in again] == \
                engine.predict(X).tolist()
            assert not victim.healthy
        # Both rings — the dead worker's included — must be unlinked.
        assert not any(_segment_exists(n) for n in names)


# ----------------------------------------------------------------------
# Rolling promotion end-to-end (the acceptance scenario)
# ----------------------------------------------------------------------
class TestRollingPromotionE2E:
    def _fleet(self, n_replicas=3):
        champion = random_model(seed=4, name="fleet")
        challenger = random_model(seed=11, name="fleet")
        registry = Registry()
        registry.publish("fleet", champion)
        pool = ReplicaPool.from_registry(registry, "fleet",
                                         n_replicas=n_replicas, mode="inline")
        gateway = Gateway(pool, max_batch=4)
        promoter = RollingPromoter(registry, "fleet", gateway)
        return champion, challenger, registry, pool, gateway, promoter

    def test_v1_to_v2_across_all_replicas_with_zero_drops(self):
        champion, challenger, registry, pool, gateway, promoter = self._fleet()
        X = _traffic(pool.engine, 40)
        # Labels follow the challenger: the shadow gate must promote.
        y = challenger.predict(X)

        pre = gateway.submit_many(X[:10])       # resolved before the roll
        mid = gateway.submit_many(X[10:16])     # queued when the roll starts
        record = promoter.promote(challenger, X, y)

        assert record["promoted"] is True
        assert record["new_version"] == 2
        assert [e["replica"] for e in record["roll"]] == [0, 1, 2]
        assert pool.versions() == [2, 2, 2]
        assert registry.engine("fleet").version == 2

        # Zero dropped requests: everything accepted before/during the
        # promotion resolved, on the old snapshot.
        for ticket in pre + mid:
            assert ticket.done
            assert ticket.version == 1
        assert gateway.stats.n_samples == 16

        # Post-promotion traffic is served by v2 on every replica.
        post = gateway.submit_many(X[16:40])
        gateway.flush()
        assert {t.version for t in post} == {2}
        assert {t.replica for t in post} == {0, 1, 2}
        assert [t.prediction for t in post] == \
            challenger.predict(X[16:40]).tolist()

    def test_fleet_wide_rollback_restores_v1_everywhere(self):
        champion, challenger, registry, pool, gateway, promoter = self._fleet()
        X = _traffic(pool.engine, 30)
        promoter.promote(challenger, X, challenger.predict(X))
        assert pool.versions() == [2, 2, 2]

        inflight = gateway.submit_many(X[:5])
        record = promoter.rollback()
        assert record["restored_version"] == 1
        assert [e["version"] for e in record["roll"]] == [1, 1, 1]
        assert pool.versions() == [1, 1, 1]
        assert registry.pinned_version("fleet") == 1
        # The retracted version stays queryable (audit trail) but
        # unversioned resolution pins to the restored champion.
        assert registry.versions("fleet") == [1, 2]
        assert registry.engine("fleet").version == 1
        # Requests accepted before the rollback resolved on v2 (no drops).
        assert all(t.done and t.version == 2 for t in inflight)

        after = gateway.submit_many(X[5:10])
        gateway.flush()
        assert {t.version for t in after} == {1}
        assert [t.prediction for t in after] == \
            champion.predict(X[5:10]).tolist()

    def test_rejected_challenger_leaves_fleet_untouched(self):
        champion, challenger, registry, pool, gateway, promoter = self._fleet()
        X = _traffic(pool.engine, 30)
        y = champion.predict(X)                 # labels follow the champion
        record = promoter.promote(challenger, X, y)
        assert record["promoted"] is False
        assert "roll" not in record
        assert pool.versions() == [1, 1, 1]
        assert registry.versions("fleet") == [1]

    def test_mismatch_during_roll_drain_restores_fleet_and_repins(self):
        # A propagating observer (the differential checker's contract)
        # raising while a replica's queue is drained mid-roll must not
        # leave the fleet split across versions or the registry pointing
        # at the refused challenger.
        champion, challenger, registry, pool, gateway, promoter = self._fleet()
        X = _traffic(pool.engine, 10)

        def diverged(Xb, sums, preds):
            raise AssertionError("hw != sw")

        diverged.propagate_errors = True
        gateway.add_observer(diverged)
        # Queue work on replica 1 so the roll's drain of replica 1 (after
        # replica 0 was already promoted) trips the observer.
        queued = gateway.submit_many(X[:3], keys=[1, 1, 1])
        with pytest.raises(AssertionError, match="hw != sw"):
            promoter.promote(challenger, X, challenger.predict(X))

        # Tickets resolved before the observer fired: zero drops, on v1.
        assert all(t.done and t.version == 1 for t in queued)
        # Fleet uniformly restored to v1; no replica quarantined (the
        # model diverged, not the workers).
        assert pool.versions() == [1, 1, 1]
        assert pool.engine.version == 1
        assert all(r.healthy for r in pool.replicas)
        # Registry resolution matches what the fleet serves.
        assert registry.versions("fleet") == [1, 2]
        assert registry.engine("fleet").version == 1

    def test_failed_roll_restores_old_version_on_swapped_replicas(self):
        champion, challenger, registry, pool, gateway, promoter = self._fleet()
        X = _traffic(pool.engine, 10)

        # Replica 1's swap blows up mid-roll.
        original_swap = pool.replicas[1].swap

        def exploding_swap(engine):
            raise ReplicaError("swap wedged")

        pool.replicas[1].swap = exploding_swap
        with pytest.raises(ReplicaError):
            promoter.promote(challenger, X, challenger.predict(X))
        pool.replicas[1].swap = original_swap

        # Replica 0 (already promoted) was rolled back; 1 is quarantined.
        assert pool.replicas[0].version == 1
        assert not pool.replicas[1].healthy
        assert pool.replicas[2].version == 1
        assert pool.engine.version == 1
        # Registry stays consistent with the fleet: the refused v2 is
        # published (audit trail) but the champion is re-pinned, so
        # unversioned readers resolve to what is actually served.
        assert registry.versions("fleet") == [1, 2]
        assert registry.pinned_version("fleet") == 1
        assert registry.engine("fleet").version == 1
        # Nothing half-promoted to roll back.
        with pytest.raises(RuntimeError, match="no promotion"):
            promoter.rollback()
        # The fleet still serves (around the quarantined replica).
        tickets = gateway.submit_many(X)
        gateway.flush()
        assert all(t.done and t.version == 1 for t in tickets)


# ----------------------------------------------------------------------
# Construction-failure leak regressions
# ----------------------------------------------------------------------
def _kaboom_host_loop(conn, engine, shm_spec=None):
    """Worker body that fails the shm handshake instead of serving."""
    conn.send(("error", "attach kaboom"))
    conn.close()


class TestConstructionLeaks:
    def test_pool_init_failure_closes_started_replicas(self, monkeypatch):
        # Regression: a replica that fails to construct used to abandon
        # the already-started workers (and their /dev/shm rings) because
        # the list comprehension building self.replicas never ran close.
        engine = _engine()
        created = []  # (replica, ring segment names at construction)

        class ThirdReplicaFails(fabric.ProcessReplica):
            def __init__(self, index, engine, **kwargs):
                if index == 2:
                    raise RuntimeError("replica 2 spawn blew up")
                super().__init__(index, engine, **kwargs)
                names = (self._ring.spec()["names"]
                         if self._ring is not None else [])
                created.append((self, names))

        monkeypatch.setattr(fabric, "ProcessReplica", ThirdReplicaFails)
        with pytest.raises(RuntimeError, match="spawn blew up"):
            ReplicaPool(engine, n_replicas=3, mode="process", max_batch=8)
        assert len(created) == 2
        for replica, _ in created:
            assert not replica._proc.is_alive()
            assert replica._conn.closed
        leaked = [n for _, names in created for n in names
                  if _segment_exists(n)]
        assert leaked == []

    def test_failed_handshake_reaps_worker_pipe_and_ring(self, monkeypatch):
        # Regression: a ("shm", ok) handshake that came back as an error
        # used to destroy only the ring, leaking the started worker
        # process and the parent pipe end.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            pytest.skip("monkeypatched worker body needs fork inheritance")
        engine = _engine()
        try:
            probe = fabric._ShmRing(99, 8, engine.n_features,
                                    engine.n_classes)
        except (RuntimeError, OSError, ValueError):
            pytest.skip("shared memory unavailable on this platform")
        probe.destroy()

        names = []

        class SpyRing(fabric._ShmRing):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                names.extend(self.spec()["names"])

        monkeypatch.setattr(fabric, "_ShmRing", SpyRing)
        monkeypatch.setattr(fabric, "_host_loop", _kaboom_host_loop)
        with pytest.raises(ReplicaError, match="attach kaboom"):
            fabric.ProcessReplica(7, engine, transport="shm", max_rows=8)
        assert names and not any(_segment_exists(n) for n in names)
        assert not any(
            p.name == "fabric-replica-7" and p.is_alive()
            for p in multiprocessing.active_children()
        )


# ----------------------------------------------------------------------
# Metric drift + context-manager regressions
# ----------------------------------------------------------------------
class TestMetricAndExitRegressions:
    def test_dispatch_time_failover_is_counted(self):
        # Regression: _dispatch_batch probed past a failed replica
        # without counting stats.failovers, so dispatch-time failovers
        # (replica died after submit) drifted out of the metrics.
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        gateway = Gateway(pool, max_batch=64)
        X = _traffic(engine, 5)
        tickets = gateway.submit_many(X, keys=[1] * 5)  # routed while healthy
        assert gateway.stats.failovers == 0
        pool.replicas[1].healthy = False                # dies before dispatch
        gateway.flush()
        # Counted in request units, same as submit-time failover.
        assert gateway.stats.failovers == 5
        assert all(t.done and t.replica == 0 for t in tickets)
        assert [t.prediction for t in tickets] == engine.predict(X).tolist()

    def test_exit_does_not_mask_body_exception(self):
        # Regression: __exit__ flushed unconditionally, so a fleet-down
        # ReplicaError from the flush replaced the exception the body
        # was already raising.
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        with pytest.raises(ValueError, match="body error"):
            with Gateway(pool, max_batch=4) as gateway:
                gateway.submit(_traffic(engine, 1)[0])
                pool.replicas[0].healthy = False  # flush would raise
                raise ValueError("body error")

    def test_exit_still_flushes_on_clean_body(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        with Gateway(pool, max_batch=64) as gateway:
            ticket = gateway.submit(_traffic(engine, 1)[0])
        assert ticket.done

    def test_rolling_promotion_covers_autoscaled_fleet(self):
        champion = random_model(seed=4, name="fleet")
        challenger = random_model(seed=11, name="fleet")
        registry = Registry()
        registry.publish("fleet", champion)
        pool = ReplicaPool.from_registry(registry, "fleet", n_replicas=2,
                                         mode="inline")
        gateway = Gateway(pool, max_batch=4)
        gateway.add_replica()                   # autoscaled mid-flight
        promoter = RollingPromoter(registry, "fleet", gateway)
        X = _traffic(pool.engine, 20)
        record = promoter.promote(challenger, X, challenger.predict(X))
        assert record["promoted"] is True
        assert record["fleet"] == 3             # the roll saw all 3 replicas
        assert [e["replica"] for e in record["roll"]] == [0, 1, 2]
        assert pool.versions() == [2, 2, 2]
        rollback = promoter.rollback()
        assert rollback["fleet"] == 3
        assert pool.versions() == [1, 1, 1]


# ----------------------------------------------------------------------
# Benchmark harness smoke (inline mode: correctness, not speedup)
# ----------------------------------------------------------------------
def test_fabric_benchmark_payload_shape():
    payload = fabric_benchmark(random_model(seed=3), n_replicas=2,
                               max_batch=8, n_requests=64, repeats=1,
                               mode="inline")
    assert payload["replicas"] == 2
    assert payload["requests"] == 64
    assert payload["single_replica_requests_per_s"] > 0
    assert payload["fabric_requests_per_s"] > 0
    assert payload["fabric_speedup"] is not None
    assert payload["fabric_report"]["fabric"]["samples"] == 64
    text = format_fabric_benchmark(payload)
    assert "fabric benchmark" in text and "2 inline replicas" in text
