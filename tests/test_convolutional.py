"""Tests for the Convolutional Tsetlin Machine extension."""

import numpy as np
import pytest

from repro.tsetlin.convolutional import ConvolutionalTsetlinMachine


def shifted_pattern_data(n=160, size=8, seed=0):
    """Class 1 images contain a 3x3 cross at a *random* position."""
    rng = np.random.default_rng(seed)
    X = np.zeros((n, size * size), dtype=np.uint8)
    y = rng.integers(0, 2, size=n).astype(np.int64)
    for i in range(n):
        img = (rng.random((size, size)) < 0.05).astype(np.uint8)
        if y[i] == 1:
            r = rng.integers(0, size - 3)
            c = rng.integers(0, size - 3)
            img[r + 1, c : c + 3] = 1
            img[r : r + 3, c + 1] = 1
        X[i] = img.ravel()
    return X, y


class TestConstruction:
    def test_patch_bigger_than_image_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalTsetlinMachine(2, (5, 5), patch_shape=(6, 3))

    def test_odd_clauses_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalTsetlinMachine(2, (8, 8), n_clauses=5)

    def test_patch_feature_arithmetic(self):
        ctm = ConvolutionalTsetlinMachine(2, (8, 8), patch_shape=(3, 3),
                                          n_clauses=4)
        assert ctm.n_patches == 36
        assert ctm.n_patch_features == 9 + 5 + 5

    def test_full_image_patch_degenerates_to_flat(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(4, 4),
                                          n_clauses=4)
        assert ctm.n_patches == 1
        assert ctm.n_patch_features == 16


class TestPatchExtraction:
    def test_patch_contents(self):
        ctm = ConvolutionalTsetlinMachine(2, (3, 3), patch_shape=(2, 2),
                                          n_clauses=4)
        img = np.arange(9).reshape(3, 3) % 2
        patches = ctm._patches(img.ravel()[np.newaxis].astype(np.uint8))
        assert patches.shape == (1, 4, 4 + 1 + 1)
        # top-left patch pixels are the image's top-left 2x2 window
        assert patches[0, 0, :4].tolist() == [0, 1, 1, 0]

    def test_coordinate_thermometer(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(2, 2),
                                          n_clauses=4)
        coords = ctm._coord_bits  # (9, 2+2)
        assert coords[0].tolist() == [0, 0, 0, 0]      # r=0, c=0
        assert coords[4].tolist() == [1, 0, 1, 0]      # r=1, c=1
        assert coords[8].tolist() == [1, 1, 1, 1]      # r=2, c=2


class TestInference:
    def test_clause_fires_iff_any_patch_matches(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(2, 2),
                                          n_clauses=2)
        # Force clause 0 of class 0 to require pixel(0,0) of its patch = 1.
        ctm.team.state[:] = 1
        ctm.team.state[0, 0, 0] = 2 * ctm.team.n_states  # include literal 0
        img0 = np.zeros(16, dtype=np.uint8)
        img1 = np.zeros(16, dtype=np.uint8)
        img1[10] = 1  # some patch has its top-left at this pixel
        out0 = ctm.clause_outputs_batch(img0[np.newaxis])
        out1 = ctm.clause_outputs_batch(img1[np.newaxis])
        assert out0[0, 0, 0] == 0
        assert out1[0, 0, 0] == 1

    def test_empty_clauses_vote_zero(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), n_clauses=4,
                                          patch_shape=(2, 2))
        ctm.team.state[:] = 1
        sums = ctm.class_sums(np.ones((2, 16), dtype=np.uint8))
        assert (sums == 0).all()

    def test_wrong_pixel_count_rejected(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(2, 2), n_clauses=4)
        with pytest.raises(ValueError):
            ctm.predict(np.zeros((1, 17), dtype=np.uint8))


class TestLearning:
    def test_learns_translated_pattern(self):
        """The CTM's reason to exist: position-independent detection."""
        X, y = shifted_pattern_data(n=300, seed=4)
        ctm = ConvolutionalTsetlinMachine(
            2, (8, 8), patch_shape=(4, 4), n_clauses=20, T=12, s=4.0, seed=5
        )
        ctm.fit(X, y, epochs=12)
        assert ctm.evaluate(X, y) > 0.75

    def test_generalizes_to_unseen_positions(self):
        """On held-out data the CTM matches or beats an equal flat TM.

        The flat machine can only memorize position-specific patterns;
        the convolutional one learns the pattern once and matches it
        anywhere, which shows up as better (or at least equal)
        generalization on fresh random placements.
        """
        from repro.tsetlin import TsetlinMachine

        X_tr, y_tr = shifted_pattern_data(n=300, seed=4)
        X_te, y_te = shifted_pattern_data(n=200, seed=99)
        ctm = ConvolutionalTsetlinMachine(
            2, (8, 8), patch_shape=(4, 4), n_clauses=20, T=12, s=4.0, seed=5
        )
        ctm.fit(X_tr, y_tr, epochs=12)
        flat = TsetlinMachine(2, 64, n_clauses=20, T=12, s=4.0, seed=5)
        flat.fit(X_tr, y_tr, epochs=12)
        ctm_acc = ctm.evaluate(X_te, y_te)
        flat_acc = flat.evaluate(X_te, y_te)
        assert ctm_acc > 0.7
        assert ctm_acc >= flat_acc - 0.02

    def test_label_validation(self):
        ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(2, 2),
                                          n_clauses=4)
        with pytest.raises(ValueError):
            ctm.fit(np.zeros((2, 16), dtype=np.uint8), np.array([0, 3]), epochs=1)

    def test_states_stay_bounded(self):
        X, y = shifted_pattern_data(n=60, seed=6)
        ctm = ConvolutionalTsetlinMachine(
            2, (8, 8), patch_shape=(3, 3), n_clauses=6, T=5, s=2.5, seed=7,
            n_states=8,
        )
        ctm.fit(X, y, epochs=3)
        assert ctm.team.state.min() >= 1
        assert ctm.team.state.max() <= 16
