"""Tests for clause expressions (Fig. 2 / Fig. 4b semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import TMModel
from repro.model.expressions import (
    ClauseExpression,
    expressions_from_model,
    format_clause,
    model_snippet,
    shared_expression_pool,
)
from _fixtures import random_model


class TestClauseExpression:
    def test_sorted_canonical(self):
        e = ClauseExpression([5, 1, 3], n_features=4)
        assert e.literals == (1, 3, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClauseExpression([8], n_features=4)

    def test_positive_negative_split(self):
        e = ClauseExpression([0, 5, 3], n_features=4)
        assert e.positive_features() == (0, 3)
        assert e.negated_features() == (1,)

    def test_contradiction(self):
        e = ClauseExpression([1, 5], n_features=4)  # x1 & ~x1
        assert e.is_contradictory()
        assert ClauseExpression([1, 6], n_features=4).is_contradictory() is False

    def test_evaluate(self):
        e = ClauseExpression([0, 5], n_features=4)  # x0 & ~x1
        assert e.evaluate([1, 0, 0, 0]) == 1
        assert e.evaluate([1, 1, 0, 0]) == 0
        assert e.evaluate([0, 0, 0, 0]) == 0

    def test_empty_evaluates_zero(self):
        assert ClauseExpression([], n_features=3).evaluate([1, 1, 1]) == 0

    def test_include_row_roundtrip(self):
        e = ClauseExpression([2, 7], n_features=4)
        row = e.include_row()
        assert ClauseExpression.from_include_row(row, 4) == e

    def test_hashable_equality(self):
        a = ClauseExpression([1, 2], n_features=4)
        b = ClauseExpression([2, 1], n_features=4)
        assert a == b
        assert len({a, b}) == 1

    def test_restricted_to(self):
        # literals: x0, x3, ~x1 over 4 features
        e = ClauseExpression([0, 3, 5], n_features=4)
        low = e.restricted_to(0, 2)   # features 0..1 -> x0, ~x1
        high = e.restricted_to(2, 4)  # features 2..3 -> x3
        assert low.literals == (0, 5)
        assert high.literals == (3,)


class TestFormatting:
    def test_format(self):
        e = ClauseExpression([0, 6], n_features=4)
        assert format_clause(e) == "x0 & ~x2"

    def test_empty_format(self):
        assert format_clause(ClauseExpression([], 4)) == "1'b1"

    def test_snippet_mentions_polarity(self):
        m = random_model()
        text = model_snippet(m, n_classes=1, n_clauses=2)
        assert "C[0][0] (+)" in text
        assert "C[0][1] (-)" in text


class TestModelViews:
    def test_expressions_match_model_outputs(self, small_model):
        exprs = expressions_from_model(small_model)
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(10, small_model.n_features)).astype(np.uint8)
        ref = small_model.clause_outputs(X)
        for i, x in enumerate(X):
            for c in range(small_model.n_classes):
                for k in range(small_model.n_clauses):
                    assert exprs[c][k].evaluate(x) == ref[i, c, k]

    def test_shared_pool_counts_duplicates(self):
        inc = np.zeros((2, 2, 4), dtype=bool)
        inc[0, 0, 0] = True
        inc[1, 1, 0] = True  # same expression in another class
        inc[0, 1, 1] = True  # unique
        m = TMModel(include=inc, n_features=2)
        pool = shared_expression_pool(m)
        assert len(pool) == 2
        dup = ClauseExpression([0], n_features=2)
        assert sorted(pool[dup]) == [(0, 0), (1, 1)]

    def test_pool_skips_empty(self):
        m = TMModel(include=np.zeros((1, 3, 4), dtype=bool), n_features=2)
        assert shared_expression_pool(m) == {}


@settings(max_examples=30, deadline=None)
@given(
    lits=st.lists(st.integers(0, 15), max_size=8),
    split=st.integers(1, 7),
    x=st.lists(st.integers(0, 1), min_size=8, max_size=8),
)
def test_partial_clause_product_property(lits, split, x):
    """The AND of the packet-restricted sub-clauses equals the full clause.

    This is the invariant the HCB architecture relies on (Fig. 5): partial
    clause outputs accumulated across packets reproduce the monolithic
    clause.
    """
    expr = ClauseExpression(lits, n_features=8)
    if expr.is_empty:
        return
    low = expr.restricted_to(0, split)
    high = expr.restricted_to(split, 8)
    full = expr.evaluate(x)
    parts = 1
    for sub in (low, high):
        if not sub.is_empty:
            parts &= sub.evaluate(x)
    assert parts == full
