"""Directed tests for the Type I / Type II learning rules."""

import numpy as np

from repro.tsetlin.automata import AutomataTeam
from repro.tsetlin.feedback import clause_outputs, type_i_feedback, type_ii_feedback


class FixedRandom:
    """Deterministic RNG stub returning a constant."""

    def __init__(self, value):
        self.value = value

    def random(self, shape):
        return np.full(shape, self.value)

    def bernoulli(self, p, shape):
        return self.random(shape) < p


def make_team(include_rows, n_states=10):
    """Team of one class whose include actions match the given rows."""
    rows = np.asarray(include_rows, dtype=bool)
    team = AutomataTeam((1, rows.shape[0], rows.shape[1]), n_states=n_states)
    team.state[0] = np.where(rows, n_states + 1, n_states).astype(np.int16)
    return team


class TestClauseOutputs:
    def test_empty_clause_training_convention(self):
        inc = np.zeros((2, 6), dtype=bool)
        lits = np.array([1, 0, 1, 0, 1, 0])
        assert clause_outputs(inc, lits, empty_output=1).tolist() == [1, 1]
        assert clause_outputs(inc, lits, empty_output=0).tolist() == [0, 0]

    def test_violated_include_kills_clause(self):
        inc = np.zeros((1, 4), dtype=bool)
        inc[0, 2] = True
        lits = np.array([1, 1, 0, 1])
        assert clause_outputs(inc, lits).tolist() == [0]

    def test_satisfied_clause_fires(self):
        inc = np.zeros((1, 4), dtype=bool)
        inc[0, [0, 3]] = True
        lits = np.array([1, 0, 0, 1])
        assert clause_outputs(inc, lits).tolist() == [1]


class TestTypeI:
    def test_fired_clause_strengthens_true_literals(self):
        team = make_team([[True, False, False, False]])
        lits = np.array([1, 1, 0, 0])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        assert out[0] == 1
        before = team.state.copy()
        # rng value 0.0 -> every probabilistic transition taken
        type_i_feedback(team, 0, np.array([True]), out, lits, s=4.0,
                        rng=FixedRandom(0.0))
        # literal 0 (value 1): strengthened; literals 2,3 (value 0): eroded
        assert team.state[0, 0, 0] == before[0, 0, 0] + 1
        assert team.state[0, 0, 1] == before[0, 0, 1] + 1
        assert team.state[0, 0, 2] == before[0, 0, 2] - 1
        assert team.state[0, 0, 3] == before[0, 0, 3] - 1

    def test_unfired_clause_erodes_everything(self):
        team = make_team([[True, True, False, False]])
        lits = np.array([0, 1, 1, 0])  # literal 0 violates -> clause 0
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        assert out[0] == 0
        before = team.state.copy()
        type_i_feedback(team, 0, np.array([True]), out, lits, s=4.0,
                        rng=FixedRandom(0.0))
        assert (team.state == before - 1).all()

    def test_no_probability_no_change(self):
        team = make_team([[True, False, False, False]])
        lits = np.array([1, 1, 0, 0])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        before = team.state.copy()
        # rng value just below 1 -> erosion (p=1/s) never fires; with
        # boost_true_positive the strengthening still fires at p=1.
        type_i_feedback(team, 0, np.array([True]), out, lits, s=4.0,
                        rng=FixedRandom(0.999), boost_true_positive=True)
        assert team.state[0, 0, 0] == before[0, 0, 0] + 1
        assert team.state[0, 0, 1] == before[0, 0, 1] + 1
        assert np.array_equal(team.state[0, 0, 2:], before[0, 0, 2:])

    def test_unselected_clause_untouched(self):
        team = make_team([[True, False, False, False],
                          [False, True, False, False]])
        lits = np.array([1, 1, 0, 0])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        before = team.state.copy()
        type_i_feedback(team, 0, np.array([True, False]), out, lits, s=4.0,
                        rng=FixedRandom(0.0))
        assert np.array_equal(team.state[0, 1], before[0, 1])
        assert not np.array_equal(team.state[0, 0], before[0, 0])

    def test_states_stay_in_bounds(self):
        team = make_team([[True] * 4], n_states=3)
        team.state[:] = 6
        lits = np.array([1, 1, 1, 1])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        for _ in range(10):
            type_i_feedback(team, 0, np.array([True]), out, lits, s=2.0,
                            rng=FixedRandom(0.0))
        assert team.state.max() <= 6
        assert team.state.min() >= 1


class TestTypeII:
    def test_includes_zero_valued_literals(self):
        team = make_team([[True, False, False, False]])
        lits = np.array([1, 0, 1, 0])  # clause fires (only literal 0 included)
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        assert out[0] == 1
        before = team.state.copy()
        type_ii_feedback(team, 0, np.array([True]), out, lits)
        # literals 1 and 3 are 0 and excluded -> stepped toward include
        assert team.state[0, 0, 1] == before[0, 0, 1] + 1
        assert team.state[0, 0, 3] == before[0, 0, 3] + 1
        # literal 0 (value 1) and literal 2 (value 1) untouched
        assert team.state[0, 0, 0] == before[0, 0, 0]
        assert team.state[0, 0, 2] == before[0, 0, 2]

    def test_non_firing_clause_untouched(self):
        team = make_team([[True, True, False, False]])
        lits = np.array([0, 1, 0, 0])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        assert out[0] == 0
        before = team.state.copy()
        type_ii_feedback(team, 0, np.array([True]), out, lits)
        assert np.array_equal(team.state, before)

    def test_already_included_not_pushed(self):
        team = make_team([[True, True, False, False]])
        lits = np.array([1, 1, 0, 0])
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        before = team.state.copy()
        type_ii_feedback(team, 0, np.array([True]), out, lits)
        # literals 0,1 are included already; 2,3 are 0-valued and excluded
        assert team.state[0, 0, 0] == before[0, 0, 0]
        assert team.state[0, 0, 1] == before[0, 0, 1]
        assert team.state[0, 0, 2] == before[0, 0, 2] + 1

    def test_type_ii_makes_clause_stop_firing_eventually(self):
        team = make_team([[True, False, False, False]], n_states=2)
        lits = np.array([1, 0, 0, 0])
        for _ in range(5):
            out = clause_outputs(team.actions()[0], lits, empty_output=1)
            if out[0] == 0:
                break
            type_ii_feedback(team, 0, np.array([True]), out, lits)
        out = clause_outputs(team.actions()[0], lits, empty_output=1)
        assert out[0] == 0
