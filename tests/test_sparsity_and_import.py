"""Tests for sparsity/sharing analysis and the external-model importer."""

import json

import numpy as np
import pytest

from repro.model import (
    TMModel,
    analyze_sharing,
    analyze_sparsity,
    import_bit_matrix,
    import_model,
    import_state_dump,
)
from repro.model.importer import ImportError_
from _fixtures import random_model


class TestSparsityReport:
    def test_counts_on_crafted_model(self):
        inc = np.zeros((1, 4, 8), dtype=bool)
        inc[0, 0, [0, 1]] = True
        inc[0, 1, 2] = True
        # clauses 2, 3 empty
        m = TMModel(include=inc, n_features=4)
        rep = analyze_sparsity(m)
        assert rep.total_includes == 3
        assert rep.empty_clauses == 2
        assert rep.includes_per_clause_max == 2
        assert rep.density == pytest.approx(3 / 32)

    def test_contradictory_counted(self):
        inc = np.zeros((1, 2, 8), dtype=bool)
        inc[0, 0, 0] = True
        inc[0, 0, 4] = True  # x0 & ~x0
        m = TMModel(include=inc, n_features=4)
        assert analyze_sparsity(m).contradictory_clauses == 1

    def test_per_class_density(self):
        m = random_model(n_classes=3, seed=11)
        rep = analyze_sparsity(m)
        assert len(rep.per_class_density) == 3
        assert np.isclose(np.mean(rep.per_class_density), rep.density, atol=1e-9)

    def test_summary_text(self):
        rep = analyze_sparsity(random_model())
        assert "density" in rep.summary()


class TestSharingReport:
    def test_duplicates_detected(self):
        inc = np.zeros((2, 4, 6), dtype=bool)
        inc[:, :, 0] = True  # all 8 clauses identical (x0)
        m = TMModel(include=inc, n_features=3)
        rep = analyze_sharing(m)
        assert rep.distinct_expressions == 1
        assert rep.total_nonempty_clauses == 8
        assert rep.duplicate_instances == 8
        assert rep.full_clause_sharing_ratio == pytest.approx(7 / 8)
        assert rep.inter_class_duplicates >= 1
        assert rep.intra_class_duplicates >= 1

    def test_no_duplicates(self):
        inc = np.zeros((1, 3, 8), dtype=bool)
        inc[0, 0, 0] = True
        inc[0, 1, 1] = True
        inc[0, 2, 2] = True
        m = TMModel(include=inc, n_features=4)
        rep = analyze_sharing(m)
        assert rep.duplicated_expressions == 0
        assert rep.full_clause_sharing_ratio == 0.0

    def test_literal_overlap_positive_for_trained_like(self):
        m = random_model(density=0.3, seed=4)
        rep = analyze_sharing(m)
        assert rep.pairwise_literal_overlap > 0.0


class TestImporter:
    def test_state_dump(self):
        states = np.full((2, 2, 6), 5, dtype=np.int64)
        states[0, 0, 0] = 9  # include (> n_states = 5)
        m = import_state_dump(states, n_states=5)
        assert m.include[0, 0, 0]
        assert m.include.sum() == 1
        assert m.n_features == 3

    def test_state_dump_range_check(self):
        states = np.full((1, 1, 4), 20, dtype=np.int64)
        with pytest.raises(ImportError_):
            import_state_dump(states, n_states=5)

    def test_state_dump_odd_literals(self):
        with pytest.raises(ImportError_):
            import_state_dump(np.ones((1, 1, 5), dtype=np.int64), n_states=1)

    def test_bit_matrix_dense(self):
        bits = np.zeros((1, 2, 4), dtype=np.int64)
        bits[0, 1, 3] = 1
        m = import_bit_matrix(bits)
        assert m.include[0, 1, 3]

    def test_bit_matrix_strings(self):
        m = import_bit_matrix([["1000", "0010"]])
        assert m.n_features == 2
        assert m.include[0, 0, 0]
        assert m.include[0, 1, 2]

    def test_bit_matrix_rejects_non_binary(self):
        with pytest.raises(ImportError_):
            import_bit_matrix(np.full((1, 1, 4), 2))

    def test_feature_crosscheck(self):
        with pytest.raises(ImportError_):
            import_bit_matrix(np.zeros((1, 1, 4)), n_features=3)

    def test_import_native_file(self, tmp_path):
        m = random_model(seed=14)
        path = tmp_path / "native.json"
        m.save(path)
        clone = import_model(path)
        assert clone == m

    def test_import_state_file(self, tmp_path):
        states = np.full((1, 2, 4), 3, dtype=np.int64)
        states[0, 0, 1] = 6
        path = tmp_path / "dump.json"
        path.write_text(json.dumps({"states": states.tolist(), "n_states": 3}))
        m = import_model(path)
        assert m.include[0, 0, 1]

    def test_import_npy(self, tmp_path):
        states = np.full((1, 2, 4), 3, dtype=np.int64)
        states[0, 1, 0] = 6
        path = tmp_path / "dump.npy"
        np.save(path, states)
        m = import_model(str(path))
        assert m.include[0, 1, 0]

    def test_unknown_payload(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ImportError_):
            import_model(path)

    def test_imported_model_runs_inference(self):
        bits = np.zeros((2, 2, 6), dtype=np.int64)
        bits[0, 0, 0] = 1
        m = import_bit_matrix(bits)
        pred = m.predict(np.array([[1, 0, 0]], dtype=np.uint8))
        assert pred[0] == 0
