"""Failure-injection and error-path tests across the toolflow."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.flow.verify import netlists_equivalent
from repro.rtl import Netlist
from repro.simulator import AcceleratorSimulator, build_testbench


class TestSimulatorErrors:
    def test_run_batch_lane_mismatch(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        sim = AcceleratorSimulator(design, batch=4)
        with pytest.raises(ValueError):
            sim.run_batch(np.zeros((3, tiny_model.n_features), dtype=np.uint8))

    def test_run_stream_requires_single_lane(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        sim = AcceleratorSimulator(design, batch=2)
        with pytest.raises(ValueError):
            sim.run_stream(np.zeros((1, tiny_model.n_features), dtype=np.uint8))


class TestTestbenchDetectsBrokenDesigns:
    def test_flipped_result_bit_fails(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        nl = design.netlist
        nl.set_output("result[0]", nl.g_not(nl.outputs["result[0]"]))
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(4, tiny_model.n_features)).astype(np.uint8)
        report = build_testbench(design, X).run()
        assert not report.passed
        assert report.mismatches > 0

    def test_broken_valid_timing_fails(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        nl = design.netlist
        # Delay result_valid by an extra register: latency check must fail.
        late = nl.dff(nl.outputs["result_valid"], name="late_valid")
        nl.set_output("result_valid", late)
        X = np.zeros((2, tiny_model.n_features), dtype=np.uint8)
        report = build_testbench(design, X).run()
        assert not report.latency_match
        assert not report.passed


class TestEquivalenceChecker:
    def test_different_interfaces_not_equivalent(self):
        a = Netlist("a")
        x = a.add_input("x")
        a.set_output("o", a.g_not(x))
        b = Netlist("b")
        y = b.add_input("y")
        b.set_output("o", b.g_not(y))
        assert not netlists_equivalent(a, b)

    def test_different_functions_detected(self):
        a = Netlist("a")
        x = a.add_input("x")
        z = a.add_input("z")
        a.set_output("o", a.g_and(x, z))
        b = Netlist("b")
        x2 = b.add_input("x")
        z2 = b.add_input("z")
        b.set_output("o", b.g_or(x2, z2))
        assert not netlists_equivalent(a, b, n_cycles=16)

    def test_different_register_init_detected(self):
        a = Netlist("a")
        xa = a.add_input("x")
        a.set_output("o", a.dff(xa, init=0))
        b = Netlist("b")
        xb = b.add_input("x")
        b.set_output("o", b.dff(xb, init=1))
        assert not netlists_equivalent(a, b, n_cycles=4)


class TestCliErrors:
    def test_unknown_dataset_rejected_by_argparse(self):
        from repro.flow.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--dataset", "imagenet"])

    def test_missing_command_rejected(self):
        from repro.flow.cli import main

        with pytest.raises(SystemExit):
            main([])


class TestConfigValidation:
    def test_bus_width_bounds(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(bus_width=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(bus_width=4096)

    def test_argmax_single_class_rejected(self):
        from repro.accelerator import build_argmax

        nl = Netlist()
        with pytest.raises(ValueError):
            build_argmax(nl, [], 0)

    def test_generate_rejects_weight_shape_via_model(self):
        import numpy as np

        from repro.model import TMModel

        with pytest.raises(ValueError):
            TMModel(
                include=np.zeros((2, 2, 4), dtype=bool),
                n_features=2,
                weights=np.zeros((3, 2), dtype=np.int32),
            )
