"""Tests for the architectural blocks: controller, class sum, argmax, HCBs."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    PacketSchedule,
    build_argmax,
    build_class_sums,
    build_controller,
    build_hcbs,
    class_sum_width,
)
from repro.model import TMModel
from repro.rtl import Netlist, bus_const, bus_input
from repro.simulator.core import CompiledNetlist
from _fixtures import random_model


class TestController:
    def make(self, n_packets):
        nl = Netlist("ctrl")
        s_valid = nl.add_input("s_valid")
        rst = nl.add_input("rst")
        stall = nl.add_input("stall")
        sig = build_controller(nl, n_packets, s_valid, rst, stall)
        nl.set_output("ready", sig.s_ready)
        nl.set_output("done", sig.done)
        nl.set_output("done_r", sig.done_r)
        nl.set_output("busy", sig.busy)
        for i, en in enumerate(sig.packet_enables):
            nl.set_output(f"en{i}", en)
        return nl

    def test_counter_wraps_and_enables_one_hot(self):
        nl = self.make(3)
        sim = CompiledNetlist(nl, batch=1)
        for cycle in range(7):
            sim.set_input("s_valid", 1)
            sim.set_input("rst", 0)
            sim.set_input("stall", 0)
            sim.settle()
            enables = [int(sim.output(f"en{i}")[0]) for i in range(3)]
            assert sum(enables) == 1
            assert enables[cycle % 3] == 1
            sim.clock()

    def test_done_pulses_on_last_packet(self):
        nl = self.make(3)
        sim = CompiledNetlist(nl, batch=1)
        dones = []
        dones_r = []
        for _ in range(6):
            sim.set_input("s_valid", 1)
            sim.set_input("rst", 0)
            sim.set_input("stall", 0)
            sim.settle()
            dones.append(int(sim.output("done")[0]))
            dones_r.append(int(sim.output("done_r")[0]))
            sim.clock()
        assert dones == [0, 0, 1, 0, 0, 1]
        assert dones_r == [0, 0, 0, 1, 0, 0]

    def test_stall_deasserts_ready_and_freezes(self):
        nl = self.make(2)
        sim = CompiledNetlist(nl, batch=1)
        sim.step(s_valid=1, rst=0, stall=0)  # accept packet 0
        sim.set_input("stall", 1)
        sim.set_input("s_valid", 1)
        sim.set_input("rst", 0)
        sim.settle()
        assert sim.output("ready")[0] == 0
        en1 = int(sim.output("en1")[0])
        assert en1 == 0  # no accept while stalled
        sim.clock()
        sim.set_input("stall", 0)
        sim.settle()
        assert sim.output("en1")[0] == 1  # still waiting on packet 1

    def test_reset_clears_counter_and_busy(self):
        nl = self.make(4)
        sim = CompiledNetlist(nl, batch=1)
        sim.step(s_valid=1, rst=0, stall=0)
        sim.step(s_valid=1, rst=0, stall=0)
        sim.step(s_valid=0, rst=1, stall=0)
        sim.set_input("rst", 0)
        sim.set_input("s_valid", 1)
        sim.settle()
        assert sim.output("en0")[0] == 1  # back to packet 0
        assert sim.output("busy")[0] == 0

    def test_single_packet_design(self):
        nl = self.make(1)
        sim = CompiledNetlist(nl, batch=1)
        sim.set_input("s_valid", 1)
        sim.set_input("rst", 0)
        sim.set_input("stall", 0)
        sim.settle()
        assert sim.output("done")[0] == 1

    def test_n_packets_validated(self):
        nl = Netlist()
        v = nl.add_input("v")
        r = nl.add_input("r")
        with pytest.raises(ValueError):
            build_controller(nl, 0, v, r)


class TestClassSum:
    def eval_sums(self, model, X_row):
        """Class sums via gates vs the model's reference semantics."""
        nl = Netlist("cs")
        lits = bus_input(nl, "x", model.n_features)
        # Clause nets computed combinationally for one datapoint.
        clause_nets = []
        for c in range(model.n_classes):
            row_nets = []
            for k in range(model.n_clauses):
                terms = []
                for f in range(model.n_features):
                    if model.include[c, k, f]:
                        terms.append(lits[f])
                    if model.include[c, k, model.n_features + f]:
                        terms.append(nl.g_not(lits[f]))
                row_nets.append(nl.g_and_tree(terms))
            clause_nets.append(row_nets)
        sums = build_class_sums(nl, model, clause_nets)
        for c, s in enumerate(sums):
            for i, bit in enumerate(s):
                nl.set_output(f"s{c}[{i}]", bit)
        sim = CompiledNetlist(nl, batch=1)
        sim.set_bus("x", int("".join(str(b) for b in X_row[::-1]), 2))
        sim.settle()
        return np.array(
            [sim.output_bus(f"s{c}", signed=True)[0] for c in range(model.n_classes)]
        )

    def test_matches_reference_on_random_models(self):
        rng = np.random.default_rng(0)
        for seed in range(4):
            model = random_model(n_classes=3, n_clauses=6, n_features=10,
                                 density=0.25, seed=seed)
            X = rng.integers(0, 2, size=(3, 10)).astype(np.uint8)
            for x in X:
                got = self.eval_sums(model, x)
                ref = model.class_sums(x[np.newaxis])[0]
                assert np.array_equal(got, ref)

    def test_weighted_class_sums(self):
        inc = np.zeros((2, 3, 8), dtype=bool)
        inc[:, :, 0] = True  # all clauses = x0
        weights = np.array([[2, -3, 1], [5, 0, -1]], dtype=np.int32)
        model = TMModel(include=inc, n_features=4, weights=weights)
        got = self.eval_sums(model, np.array([1, 0, 0, 0], dtype=np.uint8))
        assert got.tolist() == [0, 4]

    def test_width_covers_extremes(self):
        model = random_model(n_clauses=10)
        w = class_sum_width(model)
        max_votes = 5  # 10 clauses -> 5 positive
        assert (1 << (w - 1)) - 1 >= max_votes


class TestArgmax:
    def run_argmax(self, values, width):
        nl = Netlist("am")
        sums = [bus_const(nl, v, width) for v in values]
        idx, val = build_argmax(nl, sums, len(values))
        for i, bit in enumerate(idx):
            nl.set_output(f"i[{i}]", bit)
        for i, bit in enumerate(val):
            nl.set_output(f"v[{i}]", bit)
        sim = CompiledNetlist(nl, batch=1)
        sim.settle()
        return int(sim.output_bus("i")[0]), int(sim.output_bus("v", signed=True)[0])

    @pytest.mark.parametrize("values", [
        [3, 1, 2],
        [-5, -1, -3, -2],
        [0, 0, 0],          # ties -> lowest index
        [1],
        [5, 5, 7, 7, 2],    # non-power-of-two with ties
        [-8, 7],
    ])
    def test_matches_numpy_argmax(self, values):
        idx, val = self.run_argmax(values, width=5)
        assert idx == int(np.argmax(values))
        assert val == max(values)

    def test_padding_never_wins(self):
        # All-real-minimum values must still beat the padded -2^(w-1)? No:
        # the padding IS the minimum, ties break toward the real class.
        idx, val = self.run_argmax([-16, -16, -16], width=5)
        assert idx == 0

    def test_width_mismatch_rejected(self):
        nl = Netlist()
        a = bus_const(nl, 1, 4)
        b = bus_const(nl, 1, 5)
        with pytest.raises(ValueError):
            build_argmax(nl, [a, b], 2)


class TestHCB:
    def build(self, model, bus_width=8, **cfg_kwargs):
        config = AcceleratorConfig(bus_width=bus_width, **cfg_kwargs)
        nl = Netlist("hcb", share=config.share_logic)
        sched = PacketSchedule(model.n_features, bus_width)
        data = bus_input(nl, "d", bus_width)
        enables = [nl.add_input(f"en{p}") for p in range(sched.n_packets)]
        clause_nets, infos = build_hcbs(nl, model, sched, data, enables, config)
        return nl, clause_nets, infos

    def test_register_counts_with_pruning(self, tiny_model):
        # share_logic off -> no register dedup, so the count is exact.
        _, _, infos = self.build(tiny_model, prune_passthrough=True,
                                 share_logic=False)
        for info in infos:
            assert info.n_registers == info.n_active_clauses

    def test_register_dedup_bounded_with_sharing(self, tiny_model):
        _, _, infos = self.build(tiny_model, prune_passthrough=True)
        for info in infos:
            assert info.n_registers <= info.n_active_clauses

    def test_register_counts_without_pruning(self, tiny_model):
        _, _, infos = self.build(tiny_model, prune_passthrough=False)
        total_clauses = tiny_model.n_classes * tiny_model.n_clauses
        for info in infos:
            assert info.n_registers == total_clauses

    def test_include_terms_counted(self, tiny_model):
        _, _, infos = self.build(tiny_model)
        total_terms = sum(i.n_include_terms for i in infos)
        assert total_terms == int(tiny_model.include.sum())

    def test_block_labels(self, tiny_model):
        nl, _, infos = self.build(tiny_model)
        for info in infos:
            assert info.block_label in nl.blocks()

    def test_enable_count_validated(self, tiny_model):
        config = AcceleratorConfig(bus_width=8)
        nl = Netlist("bad")
        sched = PacketSchedule(tiny_model.n_features, 8)
        data = bus_input(nl, "d", 8)
        with pytest.raises(ValueError):
            build_hcbs(nl, tiny_model, sched, data, [nl.const(1)], config)
