"""Tests for notebook generation and the analytic latency model."""

import json

import pytest

from repro.accelerator import AcceleratorConfig, LatencyModel, generate_accelerator
from repro.flow import generate_notebook
from repro.synthesis import implement_design
from _fixtures import random_model


class TestLatencyModel:
    def test_paper_mnist_numbers(self):
        """Paper Table I: MNIST at 50 MHz -> 0.32 us latency, 3.85M inf/s.

        13 packets + 3 pipeline stages = 16 cycles = 0.32 us at 50 MHz;
        II = 13 cycles -> 50e6/13 = 3 846 153 inf/s.
        """
        lat = LatencyModel(n_packets=13, pipeline_class_sum=True,
                           pipeline_argmax=True)
        assert lat.latency_cycles == 16
        assert lat.latency_us(50.0) == pytest.approx(0.32)
        assert lat.throughput_inf_per_s(50.0) == pytest.approx(3846153.8, rel=1e-4)

    def test_paper_kws_numbers(self):
        """KWS6: 377 bits -> 6 packets; 0.18 us and 8.33M inf/s at 50 MHz."""
        lat = LatencyModel(n_packets=6, pipeline_class_sum=True,
                           pipeline_argmax=True)
        assert lat.latency_cycles == 9
        assert lat.latency_us(50.0) == pytest.approx(0.18)
        assert lat.throughput_inf_per_s(50.0) == pytest.approx(8333333.3, rel=1e-4)

    def test_paper_cifar2_numbers(self):
        """CIFAR-2: 1024 bits -> 16 packets; 0.38 us, 3.125M inf/s @50MHz."""
        lat = LatencyModel(n_packets=16, pipeline_class_sum=True,
                           pipeline_argmax=True)
        assert lat.latency_cycles == 19
        assert lat.latency_us(50.0) == pytest.approx(0.38)
        assert lat.throughput_inf_per_s(50.0) == pytest.approx(3125000.0)

    @pytest.mark.parametrize("ps,pa,stages", [
        (False, False, 1), (True, False, 2), (False, True, 2), (True, True, 3),
    ])
    def test_stage_count(self, ps, pa, stages):
        lat = LatencyModel(n_packets=5, pipeline_class_sum=ps, pipeline_argmax=pa)
        assert lat.result_stage_count == stages
        assert lat.latency_cycles == 5 + stages

    def test_timeline_events(self):
        lat = LatencyModel(n_packets=3, pipeline_class_sum=True,
                           pipeline_argmax=True)
        events = lat.pipeline_timeline()
        assert events[0] == (0, "packet 0 -> HCB 0")
        assert events[-1][1] == "result_valid high"
        assert events[-1][0] == lat.first_result_cycle


class TestNotebook:
    def make_design(self):
        model = random_model(seed=2)
        return generate_accelerator(model, AcceleratorConfig(bus_width=8))

    def test_valid_nbformat_json(self):
        design = self.make_design()
        nb = json.loads(generate_notebook(design, clock_mhz=50.0))
        assert nb["nbformat"] == 4
        assert any(c["cell_type"] == "markdown" for c in nb["cells"])
        assert any(c["cell_type"] == "code" for c in nb["cells"])

    def test_code_cells_are_valid_python(self):
        design = self.make_design()
        nb = json.loads(generate_notebook(design, clock_mhz=65.0, dataset_name="kws6"))
        for cell in nb["cells"]:
            if cell["cell_type"] == "code":
                compile("".join(cell["source"]), "cell", "exec")

    def test_notebook_references_design(self):
        design = self.make_design()
        text = generate_notebook(design, clock_mhz=50.0)
        assert "matador_accel" in text
        assert "CLOCK_MHZ = 50.0" in text
        assert "run_stream" in text  # the FINN-style measurement

    def test_bundle_includes_notebook(self, tmp_path, tiny_model):
        from repro.flow.deploy import write_bundle

        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        impl = implement_design(design)
        files = write_bundle(tmp_path, design, impl, tiny_model)
        assert (tmp_path / "validate.ipynb").exists()
        json.loads((tmp_path / "validate.ipynb").read_text())
