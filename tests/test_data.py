"""Tests for the synthetic dataset generators and loaders."""

import numpy as np
import pytest

from repro.data import (
    Canvas,
    Dataset,
    class_balance,
    load_dataset,
    make_cifar2_like,
    make_kws6_like,
    make_mnist_like,
    train_val_split,
)
from repro.data.datasets import (
    _KWS_KEYWORDS,
    _log_filterbank_features,
    _synth_keyword,
)


class TestCanvas:
    def test_line_hits_endpoints(self):
        c = Canvas(10, 10).line(2, 2, 7, 7, thickness=1.5)
        assert c.pixels[2, 2] > 0.4
        assert c.pixels[7, 7] > 0.4
        assert c.pixels[0, 9] == 0.0

    def test_ellipse_ring(self):
        c = Canvas(20, 20).ellipse(10, 10, 6, 6, thickness=1.5)
        assert c.pixels[4, 10] > 0.3   # on the ring
        assert c.pixels[10, 10] < 0.2  # center is empty

    def test_filled_rect_clipped(self):
        c = Canvas(8, 8).rect(-3, -3, 3, 3)
        assert c.pixels[0, 0] == 1.0
        assert c.pixels[4, 4] == 0.0

    def test_blob_peak_at_center(self):
        c = Canvas(12, 12).blob(6, 6, 2.0)
        assert c.pixels[6, 6] == pytest.approx(1.0, abs=1e-6)
        assert c.pixels[0, 0] < 0.01

    def test_shift_preserves_mass_inside(self):
        c = Canvas(10, 10).rect(4, 4, 5, 5)
        s = c.shifted(2, -1)
        assert s.pixels[6, 3] == 1.0
        assert s.pixels[4, 4] == 0.0

    def test_noise_clipped(self):
        rng = np.random.default_rng(0)
        c = Canvas(6, 6).rect(0, 0, 5, 5).with_noise(rng, amount=0.9)
        assert c.pixels.max() <= 1.0
        assert c.pixels.min() >= 0.0

    def test_binarize_flat(self):
        c = Canvas(4, 4).rect(0, 0, 1, 3)
        bits = c.binarize(0.5)
        assert bits.shape == (16,)
        assert bits[:8].sum() == 8


class TestImageDatasets:
    @pytest.mark.parametrize("name,features,classes", [
        ("mnist", 784, 10),
        ("kmnist", 784, 10),
        ("fmnist", 784, 10),
        ("cifar2", 1024, 2),
        ("kws6", 377, 6),
    ])
    def test_shapes_match_paper(self, name, features, classes):
        ds = load_dataset(name, n_train=40, n_test=20, seed=0)
        assert ds.n_features == features
        assert ds.n_classes == classes
        assert ds.X_train.shape == (40, features)
        assert ds.X_test.shape == (20, features)
        assert set(np.unique(ds.X_train)) <= {0, 1}

    def test_deterministic_by_seed(self):
        a = make_mnist_like(n_train=30, n_test=10, seed=5)
        b = make_mnist_like(n_train=30, n_test=10, seed=5)
        assert np.array_equal(a.X_train, b.X_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_mnist_like(n_train=30, n_test=10, seed=1)
        b = make_mnist_like(n_train=30, n_test=10, seed=2)
        assert not np.array_equal(a.X_train, b.X_train)

    def test_roughly_balanced(self):
        ds = make_mnist_like(n_train=600, n_test=100, seed=0)
        balance = class_balance(ds.y_train, 10)
        assert balance.min() > 0.04
        assert balance.max() < 0.2

    def test_classes_are_separable(self):
        """A nearest-centroid classifier must beat chance comfortably."""
        ds = make_cifar2_like(n_train=200, n_test=100, seed=0)
        centroids = np.stack([
            ds.X_train[ds.y_train == c].mean(axis=0) for c in range(2)
        ])
        d = ((ds.X_test[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = (np.argmin(d, axis=1) == ds.y_test).mean()
        assert acc > 0.8

    def test_subset(self):
        ds = make_mnist_like(n_train=50, n_test=30, seed=0)
        sub = ds.subset(n_train=10, n_test=5)
        assert sub.n_train == 10
        assert sub.n_test == 5
        assert np.array_equal(sub.X_train, ds.X_train[:10])


class TestKws:
    def test_waveform_length_and_energy(self):
        rng = np.random.default_rng(0)
        wave = _synth_keyword("yes", rng)
        assert len(wave) == 1920
        assert np.abs(wave).max() > 0.3

    def test_filterbank_shape(self):
        rng = np.random.default_rng(0)
        feats = _log_filterbank_features(_synth_keyword("no", rng))
        assert feats.shape == (377,)
        assert np.isfinite(feats).all()

    def test_keywords_have_distinct_signatures(self):
        rng = np.random.default_rng(1)
        sigs = {}
        for kw in _KWS_KEYWORDS:
            feats = np.mean(
                [_log_filterbank_features(_synth_keyword(kw, rng)) for _ in range(3)],
                axis=0,
            )
            sigs[kw] = feats
        # Mean pairwise distance must be clearly nonzero.
        keys = list(sigs)
        dists = [
            np.linalg.norm(sigs[a] - sigs[b])
            for i, a in enumerate(keys)
            for b in keys[i + 1:]
        ]
        assert min(dists) > 1.0

    def test_kws_metadata(self):
        ds = make_kws6_like(n_train=30, n_test=12, seed=0)
        assert ds.metadata["keywords"] == list(_KWS_KEYWORDS)
        assert ds.metadata["frames"] * ds.metadata["bands"] == 377


class TestLoaders:
    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_name_normalization(self):
        ds = load_dataset("MNIST-like", n_train=10, n_test=5, seed=0)
        assert ds.name == "mnist-like"

    def test_train_val_split(self):
        ds = make_mnist_like(n_train=50, n_test=10, seed=0)
        X_tr, y_tr, X_val, y_val = train_val_split(ds, val_fraction=0.2, seed=1)
        assert len(X_val) == 10
        assert len(X_tr) == 40
        assert len(X_tr) + len(X_val) == ds.n_train

    def test_split_fraction_validated(self):
        ds = make_mnist_like(n_train=20, n_test=5, seed=0)
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=1.5)

    def test_dataset_label_validation(self):
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                X_train=np.zeros((2, 4), dtype=np.uint8),
                y_train=np.array([0, 9]),
                X_test=np.zeros((1, 4), dtype=np.uint8),
                y_test=np.array([0]),
                n_classes=2,
                n_features=4,
            )


class TestNameNormalization:
    """Regression: the old normalizer stripped underscores entirely, making
    registry keys that contain one (``binary-alpha`` via ``binary_alpha``)
    unreachable.  One normalize function now serves keys and lookups."""

    def test_underscore_aliases_reach_the_spec(self):
        from repro.data import get_spec

        spec = get_spec("binary-alpha")
        assert get_spec("binary_alpha") is spec
        assert get_spec("Binary_Alpha-like") is spec
        assert get_spec("tab_gauss") is get_spec("tab-gauss")

    def test_normalize_cases(self):
        from repro.data import normalize_name

        assert normalize_name("MNIST-like") == "mnist"
        assert normalize_name("binary_alpha") == "binary-alpha"
        assert normalize_name(" KWS6 ") == "kws6"
        # Only one trailing "-like" is stripped; interior ones survive.
        assert normalize_name("like_like-like") == "like-like"

    def test_underscore_alias_loads(self):
        ds = load_dataset("bow_topics", n_train=10, n_test=5, seed=0)
        assert ds.metadata["registry_name"] == "bow-topics"

    def test_alias_collision_rejected(self):
        from repro.data import get_spec, register

        spec = get_spec("tab-gauss")
        scratch = {"tab-gauss": spec}
        with pytest.raises(ValueError, match="already registered"):
            register(spec, registry=scratch)

    def test_non_canonical_spec_name_rejected(self):
        from repro.data import DatasetSpec

        with pytest.raises(ValueError, match="not canonical"):
            DatasetSpec("Tab_Gauss", "tabular", (4,), 2, 10, 5,
                        "bits", lambda **kw: None)


class TestSplitEdgeCases:
    def test_tiny_fraction_still_yields_one_val_sample(self):
        ds = make_mnist_like(n_train=10, n_test=5, seed=0)
        X_tr, _, X_val, _ = train_val_split(ds, val_fraction=0.01, seed=0)
        assert len(X_val) == 1          # round(0.1) == 0, clamped up
        assert len(X_tr) == 9

    def test_huge_fraction_still_yields_one_train_sample(self):
        ds = make_mnist_like(n_train=10, n_test=5, seed=0)
        X_tr, _, X_val, _ = train_val_split(ds, val_fraction=0.99, seed=0)
        assert len(X_tr) == 1           # round(9.9) == 10, clamped down
        assert len(X_val) == 9

    def test_two_samples_split_one_and_one(self):
        ds = make_mnist_like(n_train=2, n_test=2, seed=0)
        X_tr, _, X_val, _ = train_val_split(ds, val_fraction=0.5, seed=0)
        assert len(X_tr) == len(X_val) == 1

    def test_single_sample_raises(self):
        ds = make_mnist_like(n_train=1, n_test=1, seed=0)
        with pytest.raises(ValueError, match="at least 2"):
            train_val_split(ds, val_fraction=0.5)

    def test_split_is_seed_deterministic(self):
        ds = make_mnist_like(n_train=20, n_test=5, seed=0)
        a = train_val_split(ds, val_fraction=0.25, seed=7)
        b = train_val_split(ds, val_fraction=0.25, seed=7)
        for left, right in zip(a, b):
            assert np.array_equal(left, right)

    def test_class_balance_single_class(self):
        balance = class_balance(np.zeros(8, dtype=np.int64), n_classes=3)
        assert balance.tolist() == [1.0, 0.0, 0.0]

    def test_class_balance_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            class_balance(np.array([], dtype=np.int64))

    def test_subset_does_not_alias_parent_arrays(self):
        ds = make_mnist_like(n_train=20, n_test=10, seed=0)
        sub = ds.subset(n_train=5, n_test=5)
        before = ds.X_train[:5].copy()
        sub.X_train[:] = 1 - sub.X_train
        assert np.array_equal(ds.X_train[:5], before)
        sub.y_test[:] = 0
        assert not np.shares_memory(sub.y_test, ds.y_test)
