"""Tests for the debug substrate: ILA cores, AXI-stream models, VCD export."""

import numpy as np
import pytest

from repro.rtl import Netlist
from repro.simulator import (
    AxiStreamMaster,
    AxiStreamMonitor,
    CompiledNetlist,
    ILACore,
    VcdTracer,
    vcd_from_ila,
)


def counter_design(width=3):
    """Free-running counter with a wrap pulse output."""
    nl = Netlist("cnt")
    from repro.rtl import Bus, bus_const, equals_const, ripple_add

    regs = [nl.dff(nl.const(0), name=f"c[{i}]") for i in range(width)]
    count = Bus(regs)
    inc = ripple_add(nl, count, bus_const(nl, 1, 1), width=width)
    for i, r in enumerate(regs):
        nl.nodes[r].fanins = (inc[i], nl.const(1), nl.const(0))
    wrap = equals_const(nl, count, (1 << width) - 1)
    for i, r in enumerate(regs):
        nl.set_output(f"v[{i}]", r)
    nl.set_output("wrap", wrap)
    return nl, regs, wrap


class TestILA:
    def make(self, depth=64):
        nl, regs, wrap = counter_design()
        sim = CompiledNetlist(nl, batch=1)
        ila = ILACore(sim, probes={"count": regs, "wrap": wrap}, depth=depth)
        return sim, ila

    def test_capture_values(self):
        sim, ila = self.make()
        for _ in range(10):
            sim.settle()
            ila.sample()
            sim.clock()
        wf = ila.waveform("count")
        assert wf.values.tolist() == [i % 8 for i in range(10)]

    def test_trigger(self):
        sim, ila = self.make()
        ila.arm("wrap", 1)
        for _ in range(12):
            sim.settle()
            ila.sample()
            sim.clock()
        assert ila.trigger_cycle == 7  # counter first hits 7 at cycle 7

    def test_ring_buffer_depth(self):
        sim, ila = self.make(depth=4)
        for _ in range(10):
            sim.settle()
            ila.sample()
            sim.clock()
        wf = ila.waveform("count")
        assert len(wf.values) == 4
        assert wf.cycles[0] == 6  # oldest retained sample

    def test_pulse_cycles(self):
        sim, ila = self.make()
        for _ in range(17):
            sim.settle()
            ila.sample()
            sim.clock()
        assert ila.pulse_cycles("wrap") == [7, 15]

    def test_transitions(self):
        sim, ila = self.make()
        for _ in range(10):
            sim.settle()
            ila.sample()
            sim.clock()
        wf = ila.waveform("wrap")
        assert 7 in wf.transitions() and 8 in wf.transitions()

    def test_buffer_bits(self):
        sim, ila = self.make(depth=16)
        assert ila.buffer_bits() == (3 + 1) * 16

    def test_unknown_probe(self):
        sim, ila = self.make()
        with pytest.raises(KeyError):
            ila.waveform("ghost")
        with pytest.raises(KeyError):
            ila.arm("ghost", 1)

    def test_depth_validated(self):
        sim, _ = self.make()
        with pytest.raises(ValueError):
            ILACore(sim, probes={}, depth=1)


class TestAxiStream:
    def test_master_drains_in_order(self):
        master = AxiStreamMaster([10, 20, 30])
        seen = []
        for _ in range(5):
            data, valid = master.present()
            if valid:
                seen.append(int(data[0]))
            master.advance(ready=1)
        assert seen == [10, 20, 30]
        assert master.exhausted()

    def test_backpressure_holds_beat(self):
        master = AxiStreamMaster([7, 8])
        d0, v0 = master.present()
        master.advance(ready=0)
        d1, v1 = master.present()
        assert int(d1[0]) == 7 and v1 == 1  # still the same word
        master.advance(ready=1)
        d2, _ = master.present()
        assert int(d2[0]) == 8

    def test_gap_inserts_idle_cycles(self):
        master = AxiStreamMaster([1, 2], gap=2)
        valids = []
        for _ in range(7):
            _, v = master.present()
            valids.append(v)
            master.advance(ready=1)
        assert valids == [1, 0, 0, 1, 0, 0, 0]

    def test_monitor_counts_and_throughput(self):
        mon = AxiStreamMonitor()
        for cycle in range(8):
            mon.observe(cycle, cycle, valid=1, ready=cycle % 2)
        assert mon.n_beats == 4
        assert mon.cycles() == [1, 3, 5, 7]
        assert mon.throughput(words_per_item=2) == pytest.approx(2 / 7)

    def test_monitor_short_history(self):
        mon = AxiStreamMonitor()
        assert mon.throughput(1) == 0.0


class TestVcd:
    def trace(self, cycles=10):
        nl, regs, wrap = counter_design()
        sim = CompiledNetlist(nl, batch=1)
        tracer = VcdTracer(sim, {"count": regs, "wrap": wrap})
        for _ in range(cycles):
            sim.settle()
            tracer.sample()
            sim.clock()
        return tracer

    def test_header(self):
        vcd = self.trace().render()
        assert "$timescale 1ns $end" in vcd
        assert "$var wire 3 ! count [2:0] $end" in vcd
        assert "$enddefinitions $end" in vcd

    def test_changes_only(self):
        vcd = self.trace(4).render()
        # wrap never fires in 4 cycles -> exactly one initial 0 entry.
        wrap_id = '"'
        wrap_lines = [ln for ln in vcd.splitlines() if ln == f"0{wrap_id}"]
        assert len(wrap_lines) == 1

    def test_bus_values_binary(self):
        vcd = self.trace(5).render()
        assert "b11 !" in vcd  # count reaches 3

    def test_vcd_from_ila(self):
        nl, regs, wrap = counter_design()
        sim = CompiledNetlist(nl, batch=1)
        ila = ILACore(sim, probes={"count": regs, "wrap": wrap}, depth=64)
        for _ in range(9):
            sim.settle()
            ila.sample()
            sim.clock()
        vcd = vcd_from_ila(ila)
        assert "$var wire 3" in vcd
        assert "#7" in vcd  # wrap transition cycle appears

    def test_accelerator_trace_smoke(self, tiny_model):
        from repro.accelerator import AcceleratorConfig, generate_accelerator
        from repro.accelerator.packetizer import packetize

        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        sim = CompiledNetlist(design.netlist, batch=1)
        nets = {
            "result_valid": design.netlist.outputs["result_valid"],
            "result": [
                design.netlist.outputs[f"result[{i}]"]
                for i in range(design.index_width)
            ],
        }
        tracer = VcdTracer(sim, nets)
        X = np.zeros((1, tiny_model.n_features), dtype=np.uint8)
        pk = packetize(X, design.schedule)
        for cycle in range(design.latency.latency_cycles + 2):
            if cycle < design.n_packets:
                sim.set_bus("s_data", pk[:, cycle])
                sim.set_input("s_valid", 1)
            else:
                sim.set_input("s_valid", 0)
            sim.set_input("rst", 0)
            sim.set_input("stall", 0)
            sim.settle()
            tracer.sample()
            sim.clock()
        vcd = tracer.render()
        assert "1!" in vcd or "1\"" in vcd  # result_valid pulse recorded
