"""Shared fixtures: small trained models and random include matrices."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _fixtures import random_model  # noqa: E402  (shared, importable helper)
from repro.data import load_dataset  # noqa: E402
from repro.tsetlin import TsetlinMachine  # noqa: E402


@pytest.fixture(scope="session")
def kws_dataset():
    return load_dataset("kws6", n_train=240, n_test=120, seed=0)


@pytest.fixture(scope="session")
def trained_model(kws_dataset):
    """A small trained model shared by the expensive integration tests."""
    ds = kws_dataset
    tm = TsetlinMachine(
        ds.n_classes, ds.n_features, n_clauses=16, T=12, s=4.0, seed=7
    )
    tm.fit(ds.X_train, ds.y_train, epochs=4)
    return tm.export_model("kws6_test")


@pytest.fixture()
def small_model():
    return random_model()


@pytest.fixture()
def tiny_model():
    return random_model(n_classes=2, n_clauses=4, n_features=10, density=0.2, seed=3)
