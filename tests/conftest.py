"""Shared fixtures: small trained models and random include matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.model import TMModel
from repro.tsetlin import TsetlinMachine


def random_model(n_classes=3, n_clauses=8, n_features=24, density=0.12,
                 seed=0, name="rand"):
    """A random (untrained) include matrix — enough for structural tests."""
    rng = np.random.default_rng(seed)
    include = rng.random((n_classes, n_clauses, 2 * n_features)) < density
    # Avoid contradictory literals so clause outputs are non-trivial.
    pos = include[:, :, :n_features]
    neg = include[:, :, n_features:]
    both = pos & neg
    neg &= ~both
    include = np.concatenate([pos, neg], axis=2)
    return TMModel(include=include, n_features=n_features, name=name)


@pytest.fixture(scope="session")
def kws_dataset():
    return load_dataset("kws6", n_train=240, n_test=120, seed=0)


@pytest.fixture(scope="session")
def trained_model(kws_dataset):
    """A small trained model shared by the expensive integration tests."""
    ds = kws_dataset
    tm = TsetlinMachine(
        ds.n_classes, ds.n_features, n_clauses=16, T=12, s=4.0, seed=7
    )
    tm.fit(ds.X_train, ds.y_train, epochs=4)
    return tm.export_model("kws6_test")


@pytest.fixture()
def small_model():
    return random_model()


@pytest.fixture()
def tiny_model():
    return random_model(n_classes=2, n_clauses=4, n_features=10, density=0.2, seed=3)
