"""Tests for the CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import io
import json
from pathlib import Path

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def write_payloads(root, cold=3.0, steady=18.0, serve=10.0):
    root.mkdir(parents=True, exist_ok=True)
    (root / "train_throughput.json").write_text(json.dumps({
        "cold_speedup": cold,
        "steady_speedup": steady,
        "steady_vectorized_samples_per_sec": 5000.0,
    }))
    (root / "serve_throughput.json").write_text(json.dumps({
        "per_sample_baseline_rps": 1500.0,
        "batch_sizes": {
            "1": {"speedup_vs_per_sample": serve},
            "64": {"speedup_vs_per_sample": serve},
            "256": {"speedup_vs_per_sample": serve},
        },
    }))


def run_gate(tmp_path, argv):
    out = io.StringIO()
    code = compare_bench.main(argv, out=out)
    return code, out.getvalue()


class TestLookup:
    def test_dotted_paths(self):
        payload = {"a": {"b": {"c": 3}}}
        assert compare_bench.lookup(payload, "a.b.c") == 3
        assert compare_bench.lookup(payload, "a.missing") is None
        assert compare_bench.lookup(payload, "a.b.c.d") is None


class TestGate:
    def test_identical_results_pass(self, tmp_path):
        write_payloads(tmp_path / "base")
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "REGRESSION" not in text

    def test_small_drop_within_budget_passes(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=13.0)  # -28%
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0

    def test_large_drop_fails(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=12.0)  # -33% > 30% budget
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "steady_speedup" in text and "REGRESSION" in text

    def test_missing_fresh_result_fails(self, tmp_path):
        write_payloads(tmp_path / "base")
        (tmp_path / "fresh").mkdir()
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "missing fresh result" in text

    def test_missing_baseline_fails(self, tmp_path):
        (tmp_path / "base").mkdir()
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "missing baseline" in text

    def test_tighter_budget_flag(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=16.0)  # -11%
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
            "--max-regression", "0.05",
        ])
        assert code == 1

    def test_invalid_budget_rejected(self, tmp_path):
        code, _ = run_gate(tmp_path, ["--max-regression", "1.5"])
        assert code == 2

    def test_update_writes_baselines(self, tmp_path):
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
            "--update",
        ])
        assert code == 0
        assert (tmp_path / "base" / "train_throughput.json").exists()
        # And the freshly written baselines gate cleanly against themselves.
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0


class TestCommittedBaselines:
    def test_baselines_exist_and_carry_gated_metrics(self):
        baselines = _SCRIPT.parent / "baselines"
        for filename, metrics in compare_bench.GATES.items():
            payload = json.loads((baselines / filename).read_text())
            for metric in metrics:
                value = compare_bench.lookup(payload, metric)
                assert isinstance(value, (int, float)), (filename, metric)
                assert value > 1.0, (filename, metric, value)
