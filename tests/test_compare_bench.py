"""Tests for the CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import io
import json
from pathlib import Path

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def write_payloads(root, cold=3.0, steady=18.0, serve=10.0, online=2.0,
                   automl_fraction=0.26, winner_ratio=1.0):
    root.mkdir(parents=True, exist_ok=True)
    (root / "automl_efficiency.json").write_text(json.dumps({
        "winner_score_ratio": winner_ratio,
        "automl_budget_fraction": automl_fraction,
        "spent_epochs": 21,
        "grid_epochs": 81,
        "n_candidates": 9,
    }))
    (root / "train_throughput.json").write_text(json.dumps({
        "cold_speedup": cold,
        "steady_speedup": steady,
        "steady_vectorized_samples_per_sec": 5000.0,
    }))
    (root / "serve_throughput.json").write_text(json.dumps({
        "per_sample_baseline_rps": 1500.0,
        "batch_sizes": {
            "1": {"speedup_vs_per_sample": serve},
            "64": {"speedup_vs_per_sample": serve},
            "256": {"speedup_vs_per_sample": serve},
        },
    }))
    (root / "stream_throughput.json").write_text(json.dumps({
        "online_speedup": online,
        "vectorized_updates_per_sec": 1000.0,
        "detection_delay_samples": 80,
    }))


def run_gate(tmp_path, argv):
    out = io.StringIO()
    code = compare_bench.main(argv, out=out)
    return code, out.getvalue()


class TestLookup:
    def test_dotted_paths(self):
        payload = {"a": {"b": {"c": 3}}}
        assert compare_bench.lookup(payload, "a.b.c") == 3
        assert compare_bench.lookup(payload, "a.missing") is None
        assert compare_bench.lookup(payload, "a.b.c.d") is None


class TestGate:
    def test_identical_results_pass(self, tmp_path):
        write_payloads(tmp_path / "base")
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "REGRESSION" not in text

    def test_small_drop_within_budget_passes(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=13.0)  # -28%
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0

    def test_large_drop_fails(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=12.0)  # -33% > 30% budget
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "steady_speedup" in text and "REGRESSION" in text

    def test_missing_fresh_result_warns_but_passes(self, tmp_path):
        # A bench that skipped (constrained hardware) must not fail the
        # gate; the absence is surfaced as a warning.
        write_payloads(tmp_path / "base")
        (tmp_path / "fresh").mkdir()
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "WARN" in text and "no fresh result" in text
        assert "FAIL" not in text

    def test_missing_baseline_warns_but_passes(self, tmp_path):
        # A benchmark landing for the first time has no committed
        # baseline yet — warn, don't block the PR that introduces it.
        (tmp_path / "base").mkdir()
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "WARN" in text and "new benchmark" in text
        assert "FAIL" not in text

    def test_metric_missing_from_one_side_warns_but_passes(self, tmp_path):
        write_payloads(tmp_path / "base")
        write_payloads(tmp_path / "fresh")
        # Drop one gated metric from the baseline (new metric) and one
        # from the fresh side (removed/skipped metric).
        base_file = tmp_path / "base" / "train_throughput.json"
        payload = json.loads(base_file.read_text())
        del payload["steady_speedup"]
        base_file.write_text(json.dumps(payload))
        fresh_file = tmp_path / "fresh" / "serve_throughput.json"
        payload = json.loads(fresh_file.read_text())
        del payload["batch_sizes"]["256"]
        fresh_file.write_text(json.dumps(payload))
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "new metric" in text
        assert "removed/skipped metric" in text

    def test_regression_still_fails_alongside_warnings(self, tmp_path):
        # Warnings must never mask a real regression in another file.
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=9.0)  # -50%
        (tmp_path / "fresh" / "stream_throughput.json").unlink()
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "WARN" in text and "REGRESSION" in text

    def test_tighter_budget_flag(self, tmp_path):
        write_payloads(tmp_path / "base", steady=18.0)
        write_payloads(tmp_path / "fresh", steady=16.0)  # -11%
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
            "--max-regression", "0.05",
        ])
        assert code == 1

    def test_invalid_budget_rejected(self, tmp_path):
        code, _ = run_gate(tmp_path, ["--max-regression", "1.5"])
        assert code == 2

    def test_lower_is_better_increase_fails(self, tmp_path):
        # automl_budget_fraction growing past the ceiling is a search
        # regression even though the value "went up".
        write_payloads(tmp_path / "base", automl_fraction=0.26)
        write_payloads(tmp_path / "fresh", automl_fraction=0.40)  # +54%
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "automl_budget_fraction" in text and "ceiling" in text

    def test_lower_is_better_decrease_passes(self, tmp_path):
        # Spending *less* budget is an improvement, never a regression —
        # the exact asymmetry a higher-is-better floor would get wrong.
        write_payloads(tmp_path / "base", automl_fraction=0.26)
        write_payloads(tmp_path / "fresh", automl_fraction=0.10)  # -62%
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "REGRESSION" not in text

    def test_lower_is_better_small_increase_within_budget_passes(self, tmp_path):
        write_payloads(tmp_path / "base", automl_fraction=0.26)
        write_payloads(tmp_path / "fresh", automl_fraction=0.30)  # +15%
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0

    def test_winner_ratio_drop_fails(self, tmp_path):
        # The same file carries a higher-is-better gate too: the
        # scheduler falling away from the grid winner must fail.
        write_payloads(tmp_path / "base", winner_ratio=1.0)
        write_payloads(tmp_path / "fresh", winner_ratio=0.5)
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "winner_score_ratio" in text

    def test_no_metric_gated_in_both_directions(self):
        for filename, metrics in compare_bench.GATES_LOWER.items():
            overlap = set(metrics) & set(compare_bench.GATES.get(filename, ()))
            assert not overlap, (filename, overlap)

    def test_update_writes_baselines(self, tmp_path):
        write_payloads(tmp_path / "fresh")
        code, text = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
            "--update",
        ])
        assert code == 0
        assert (tmp_path / "base" / "train_throughput.json").exists()
        # And the freshly written baselines gate cleanly against themselves.
        code, _ = run_gate(tmp_path, [
            "--baselines", str(tmp_path / "base"),
            "--results", str(tmp_path / "fresh"),
        ])
        assert code == 0


class TestCommittedBaselines:
    def test_baselines_exist_and_carry_gated_metrics(self):
        baselines = _SCRIPT.parent / "baselines"
        for filename, metrics in compare_bench.GATES.items():
            payload = json.loads((baselines / filename).read_text())
            for metric in metrics:
                value = compare_bench.lookup(payload, metric)
                assert isinstance(value, (int, float)), (filename, metric)
                if filename == "traffic_sim.json":
                    # goodput / slo_attainment are fractions, not speedups.
                    assert 0.0 < value <= 1.0, (filename, metric, value)
                elif filename == "automl_efficiency.json":
                    # winner_score_ratio is scheduler-vs-grid accuracy;
                    # 1.0 exactly means the grid winner was found.
                    assert value == 1.0, (filename, metric, value)
                else:
                    assert value > 1.0, (filename, metric, value)

    def test_lower_is_better_baselines_are_fractions(self):
        baselines = _SCRIPT.parent / "baselines"
        for filename, metrics in compare_bench.GATES_LOWER.items():
            payload = json.loads((baselines / filename).read_text())
            for metric in metrics:
                value = compare_bench.lookup(payload, metric)
                assert isinstance(value, (int, float)), (filename, metric)
                assert 0.0 < value < 1.0, (filename, metric, value)
