"""QoS layer tests: admission, SLO shedding, autoscaling, traffic sim.

Everything runs on inline or simulated replicas under injected clocks,
so each refusal, histogram bucket, and scaling event is deterministic —
the overload contracts of ISSUE's tentpole are asserted exactly, not
statistically.
"""

import numpy as np
import pytest

from _fixtures import random_model
from repro.serving import (
    AdmissionController,
    Autoscaler,
    Gateway,
    InferenceEngine,
    LatencyHistogram,
    ReplicaPool,
    SLO,
    TokenBucket,
    simulate_traffic,
    format_traffic_report,
)


def _engine(seed=0, version=1, **kwargs):
    return InferenceEngine.from_model(random_model(seed=seed, **kwargs),
                                      version=version)


def _traffic(engine, n, seed=1):
    rng = np.random.default_rng(seed)
    return (rng.random((n, engine.n_features)) < 0.5).astype(np.uint8)


class FakeClock:
    """Settable monotonic clock for driving the gateway deterministically."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# TokenBucket / AdmissionController
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(4)] == \
            [True, True, True, False]
        # 0.2 s refills two tokens; a third take at the same instant fails.
        assert bucket.try_take(0.2)
        assert bucket.try_take(0.2)
        assert not bucket.try_take(0.2)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=1000.0, burst=2)
        bucket.try_take(0.0)
        bucket.try_take(100.0)  # a long idle gap must not bank > burst
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_tenants_have_isolated_buckets(self):
        ctl = AdmissionController(rate=5.0, burst=1)
        assert ctl.admit("hot", 0.0) is None
        assert ctl.admit("hot", 0.0) == "rate"
        # A different tenant at the same instant has its own full bucket.
        assert ctl.admit("cold", 0.0) is None

    def test_quota_exhaustion_is_per_tenant(self):
        ctl = AdmissionController(quota=2)
        assert [ctl.admit("a", t) for t in (0.0, 0.1, 0.2)] == \
            [None, None, "quota"]
        assert ctl.admit("b", 0.2) is None
        report = ctl.report()
        assert report["a"] == {"offered": 3, "admitted": 2, "shed": 1}
        assert report["b"] == {"offered": 1, "admitted": 1, "shed": 0}

    def test_shed_requests_do_not_consume_quota(self):
        ctl = AdmissionController(rate=1.0, burst=1, quota=2)
        assert ctl.admit("a", 0.0) is None
        assert ctl.admit("a", 0.0) == "rate"   # refused by rate...
        assert ctl.admit("a", 10.0) is None    # ...still one quota slot left
        assert ctl.admit("a", 20.0) == "quota"

    def test_per_tenant_overrides(self):
        ctl = AdmissionController(rate=1.0, burst=1,
                                  tenants={"vip": {"rate": None},
                                           "capped": {"quota": 1}})
        # vip: no rate limit at all.
        assert all(ctl.admit("vip", 0.0) is None for _ in range(5))
        assert ctl.admit("capped", 0.0) is None
        assert ctl.admit("capped", 5.0) == "quota"

    def test_none_tenant_maps_to_default(self):
        ctl = AdmissionController(quota=1)
        assert ctl.admit(None, 0.0) is None
        assert ctl.admit(None, 0.0) == "quota"
        assert AdmissionController.DEFAULT_TENANT in ctl.report()


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_quantiles_track_numpy_within_bucket_error(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=5000)
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            approx = hist.quantile(q)
            assert abs(approx - exact) / exact < 0.20

    def test_max_is_exact_and_quantiles_clamped(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 400):
            hist.record(ms / 1000.0)
        assert hist.quantile(1.0) == 0.4
        assert hist.summary()["max_ms"] == 400.0

    def test_merge_equals_recording_everything_in_one(self):
        a, b, both = (LatencyHistogram() for _ in range(3))
        rng = np.random.default_rng(5)
        for i, s in enumerate(rng.exponential(0.01, size=400)):
            (a if i % 2 else b).record(s)
            both.record(s)
        a.merge(b)
        assert a.counts == both.counts
        assert a.summary() == both.summary()

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(min_latency_s=1e-3))

    def test_empty_summary_is_all_none(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["p99_ms"] is None
        assert LatencyHistogram().quantile(0.5) is None


# ----------------------------------------------------------------------
# Gateway: shed overflow policy
# ----------------------------------------------------------------------
class TestShedOverflow:
    def _run(self, engine, X):
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        gateway = Gateway(pool, max_batch=8, max_queue=4, overflow="shed")
        tickets = gateway.submit_many(X, keys=[0] * len(X))
        gateway.flush()
        return gateway, tickets

    def test_queue_overflow_sheds_deterministically(self):
        engine = _engine()
        X = _traffic(engine, 10)
        runs = [self._run(engine, X) for _ in range(2)]
        patterns = [[t.shed for t in tickets] for _, tickets in runs]
        # max_queue=4 < max_batch=8: exactly the first four are accepted,
        # identically on both runs.
        assert patterns[0] == patterns[1] == [False] * 4 + [True] * 6
        gateway, tickets = runs[0]
        assert all(t.shed_reason == "queue" for t in tickets[4:])
        assert all(t.done and t.result() is None for t in tickets[4:])
        assert [t.prediction for t in tickets[:4]] == \
            engine.predict(X[:4]).tolist()

    def test_shed_is_counted_apart_from_accepted(self):
        gateway, tickets = self._run(_engine(), _traffic(_engine(), 10))
        assert gateway.stats.n_requests == 4         # accepted only
        assert gateway.stats.shed == 6
        assert gateway.stats.shed_by_reason == {"queue": 6}
        assert gateway.report()["fabric"]["shed"] == 6

    def test_admission_shed_via_gateway(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        clock = FakeClock()
        gateway = Gateway(pool, max_batch=4, clock=clock,
                          admission=AdmissionController(quota=2))
        X = _traffic(engine, 3)
        tickets = [gateway.submit(x, tenant="a") for x in X]
        gateway.flush()
        assert [t.shed for t in tickets] == [False, False, True]
        assert tickets[2].shed_reason == "quota"
        assert tickets[2].tenant == "a"
        assert gateway.report()["tenants"]["a"]["shed"] == 1


# ----------------------------------------------------------------------
# Gateway: deadline-aware shedding + SLO latency accounting
# ----------------------------------------------------------------------
class TestDeadlineShed:
    def test_provably_late_request_is_shed(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        gateway = Gateway(pool, max_batch=4, clock=FakeClock(),
                          slo=SLO(deadline_s=0.02, service_rate=100.0))
        X = _traffic(engine, 2)
        # First request: predicted wait (0 queued + own batch of 1)/100
        # = 10 ms <= 20 ms deadline -> admitted.
        first = gateway.submit(X[0], key=0)
        assert not first.shed
        # Second: (1 queued + own batch of 2)/100 = 30 ms > 20 ms -> shed.
        second = gateway.submit(X[1], key=0)
        assert second.shed and second.shed_reason == "deadline"
        gateway.flush()
        assert first.prediction == int(engine.predict(X[:1])[0])

    def test_class_deadlines_select_per_request(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        slo = SLO(deadline_s=0.005, class_deadlines={"batch": 10.0},
                  service_rate=100.0)
        gateway = Gateway(pool, max_batch=4, clock=FakeClock(), slo=slo)
        x = _traffic(engine, 1)[0]
        assert gateway.submit(x, klass=None).shed          # 10ms > 5ms
        assert not gateway.submit(x, klass="batch").shed   # vs 10s budget
        gateway.flush()

    def test_no_shedding_without_service_rate_evidence(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        gateway = Gateway(pool, max_batch=64, clock=FakeClock(),
                          slo=SLO(deadline_s=1e-6))  # absurd deadline
        tickets = gateway.submit_many(_traffic(engine, 20))
        gateway.flush()
        # service_rate=None and fresh replicas: no evidence, never shed.
        assert not any(t.shed for t in tickets)
        assert gateway.stats.shed == 0

    def test_latency_histogram_tracks_fake_clock(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        clock = FakeClock()
        gateway = Gateway(pool, max_batch=64, clock=clock)
        tickets = gateway.submit_many(_traffic(engine, 10))
        clock.now = 0.050
        gateway.flush()
        assert all(t.latency_s == pytest.approx(0.050) for t in tickets)
        summary = gateway.stats.latency.summary()
        assert summary["count"] == 10
        assert summary["max_ms"] == 50.0
        assert summary["p50_ms"] == pytest.approx(50.0, rel=0.15)
        assert gateway.report()["fabric"]["latency"]["count"] == 10

    def test_per_replica_stats_report_percentiles(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        gateway = Gateway(pool, max_batch=4)
        gateway.submit_many(_traffic(engine, 8))
        gateway.flush()
        for stats in gateway.report()["per_replica"].values():
            assert {"p50_ms", "p95_ms", "p99_ms"} <= set(stats)
            assert stats["p50_ms"] is not None


# ----------------------------------------------------------------------
# Autoscaler + gateway add/remove replica
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_scale_up_then_down_drops_nothing(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        gateway = Gateway(pool, max_batch=64)
        scaler = Autoscaler(gateway, max_replicas=2, high_watermark=4,
                            low_watermark=1)
        X = _traffic(engine, 10)
        tickets = gateway.submit_many(X)
        up = scaler.step()
        assert up["action"] == "up" and len(pool.replicas) == 2
        gateway.flush()
        down = scaler.step()
        assert down["action"] == "down" and len(pool.replicas) == 1
        assert scaler.events == [up, down]
        assert all(t.done and not t.shed for t in tickets)
        assert [t.prediction for t in tickets] == engine.predict(X).tolist()

    def test_scale_down_drains_queued_tail_work(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        gateway = Gateway(pool, max_batch=64)
        X = _traffic(engine, 5)
        # Key every request to the tail replica, then remove it: its
        # queue must be flushed (not dropped) before the pool shrinks.
        tickets = gateway.submit_many(X, keys=[1] * len(X))
        served = gateway.remove_replica()
        assert served == 5
        assert len(pool.replicas) == 1
        assert all(t.done and t.replica == 1 for t in tickets)
        assert [t.prediction for t in tickets] == engine.predict(X).tolist()

    def test_added_replica_is_immediately_routable(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        gateway = Gateway(pool, max_batch=4)
        assert gateway.add_replica() == 1
        X = _traffic(engine, 2)
        tickets = gateway.submit_many(X, keys=[0, 1])
        gateway.flush()
        assert [t.replica for t in tickets] == [0, 1]
        assert [t.prediction for t in tickets] == engine.predict(X).tolist()

    def test_cannot_remove_last_replica(self):
        gateway = Gateway(ReplicaPool(_engine(), n_replicas=1, mode="inline"),
                          max_batch=4)
        with pytest.raises(ValueError):
            gateway.remove_replica()

    def test_cooldown_suppresses_consecutive_actions(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=1, mode="inline")
        gateway = Gateway(pool, max_batch=64)
        scaler = Autoscaler(gateway, max_replicas=4, high_watermark=2,
                            low_watermark=0, cooldown=2)
        gateway.submit_many(_traffic(engine, 10))
        assert scaler.step()["action"] == "up"
        assert scaler.step() is None      # inside the cooldown window
        assert scaler.step() is None
        assert scaler.step()["action"] == "up"
        gateway.flush()

    def test_watermark_validation(self):
        gateway = Gateway(ReplicaPool(_engine(), n_replicas=1, mode="inline"),
                          max_batch=4)
        with pytest.raises(ValueError):
            Autoscaler(gateway, high_watermark=2, low_watermark=2)
        with pytest.raises(ValueError):
            Autoscaler(gateway, min_replicas=3, max_replicas=2)


class TestGatewayPoll:
    def test_poll_collects_ready_without_blocking(self):
        engine = _engine()
        pool = ReplicaPool(engine, n_replicas=2, mode="inline")
        gateway = Gateway(pool, max_batch=2)
        X = _traffic(engine, 4)
        tickets = gateway.submit_many(X, keys=[0, 0, 1, 1])
        # max_batch reached on both replicas: batches dispatched, results
        # buffered inline — poll resolves them with no flush.
        assert gateway.poll() == 4
        assert all(t.done for t in tickets)
        assert gateway.pending == 0

    def test_poll_leaves_queued_work_alone(self):
        engine = _engine()
        gateway = Gateway(ReplicaPool(engine, n_replicas=1, mode="inline"),
                          max_batch=64)
        ticket = gateway.submit(_traffic(engine, 1)[0])
        assert gateway.poll() == 0        # queued, never dispatched
        assert not ticket.done
        gateway.flush()
        assert ticket.done


# ----------------------------------------------------------------------
# Traffic simulator
# ----------------------------------------------------------------------
class TestTrafficSimulator:
    def _report(self, **kwargs):
        opts = dict(n_replicas=2, duration_s=0.5, rate=400.0,
                    service_rate=150.0, seed=7)
        opts.update(kwargs)
        return simulate_traffic(_engine(), **opts)

    def test_report_is_a_pure_function_of_the_seed(self):
        assert self._report() == self._report()
        assert self._report(seed=8) != self._report(seed=7)

    def test_overload_sheds_and_accounts_every_request(self):
        report = self._report()
        assert report["offered"] == report["served"] + report["shed"]
        assert report["shed"] > 0 and 0.0 < report["goodput"] < 1.0
        assert sum(report["shed_by_reason"].values()) == report["shed"]
        assert report["burst"]["shed_rate"] > 0.0

    def test_served_requests_meet_the_deadline(self):
        report = self._report(deadline_ms=100.0)
        assert report["slo_attainment"] >= 0.95
        assert report["latency_ms"]["p99"] <= 100.0

    def test_admission_isolates_hot_tenants(self):
        report = self._report(admit_rate=60.0, admit_burst=8,
                              hot_key_fraction=0.5, n_tenants=4)
        tenants = report["fabric"]["tenants"]
        hot = tenants["t0"]
        cold = max((t for k, t in tenants.items() if k != "t0"),
                   key=lambda t: t["shed"])
        # The hot tenant soaks the rate sheds; colder tenants keep serving.
        assert hot["shed"] > cold["shed"]
        assert "rate" in report["shed_by_reason"]

    def test_autoscaler_reacts_to_the_burst(self):
        report = self._report(
            deadline_ms=None,
            autoscale={"max_replicas": 6, "high_watermark": 20,
                       "low_watermark": 1, "every": 16},
        )
        assert report["autoscale_events"]
        assert any(e["action"] == "up" for e in report["autoscale_events"])
        assert report["offered"] == report["served"] + report["shed"]

    def test_format_traffic_report_renders_every_section(self):
        text = format_traffic_report(self._report())
        for token in ("traffic-sim:", "fleet", "latency", "SLO", "burst",
                      "shed by"):
            assert token in text
