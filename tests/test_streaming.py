"""Streaming subsystem tests: sources, detector, promoter, end-to-end.

The end-to-end class is the acceptance test of the continual-learning
loop: an induced abrupt drift on a high-signal synthetic stream must be
detected, a challenger trained online, shadow-evaluated, promoted
through the registry with zero dropped requests on the serving path,
and a rollback must restore the prior version.
"""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.serving import Registry
from repro.streaming import (
    DriftDetector,
    DriftStream,
    OnlineTrainer,
    Promoter,
    ReplayStream,
    StreamSession,
    flip_features,
    permute_labels,
    run_stream,
)
from repro.tsetlin import TsetlinMachine

N_FEATURES = 24
N_CLASSES = 3


def _dataset(n_train=900, n_test=150, flip=0.05, seed=0):
    """High-signal prototype dataset: near-perfectly learnable."""
    rng = np.random.default_rng(seed)
    protos = (rng.random((N_CLASSES, N_FEATURES)) < 0.5)
    n = n_train + n_test
    y = rng.integers(0, N_CLASSES, n)
    X = (protos[y] ^ (rng.random((n, N_FEATURES)) < flip)).astype(np.uint8)
    return Dataset(
        name="protos", X_train=X[:n_train], y_train=y[:n_train],
        X_test=X[n_train:], y_test=y[n_train:],
        n_classes=N_CLASSES, n_features=N_FEATURES,
    )


def _factory(seed):
    return TsetlinMachine(N_CLASSES, N_FEATURES, n_clauses=10, T=6, s=3.5,
                          seed=seed, backend="vectorized")


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class TestSources:
    def test_replay_is_deterministic_and_indexed(self):
        ds = _dataset(n_train=100)
        stream = ReplayStream(ds, batch_size=16, n_samples=150, seed=3)
        a = list(stream)
        b = list(stream)  # second iteration replays bit-identically
        assert sum(len(x) for x in a) == 150
        assert [x.start for x in a] == [x.start for x in b]
        assert all(np.array_equal(p.X, q.X) and np.array_equal(p.y, q.y)
                   for p, q in zip(a, b))
        starts = [x.start for x in a]
        assert starts == sorted(starts) and starts[0] == 0
        assert a[-1].stop == 150

    def test_replay_cycles_with_fresh_shuffle(self):
        ds = _dataset(n_train=40)
        stream = ReplayStream(ds, batch_size=40, n_samples=80, seed=1)
        first, second = list(stream)
        # Both passes cover the split, in different orders.
        assert not np.array_equal(first.y, second.y)
        assert sorted(first.y) == sorted(second.y)

    def test_abrupt_drift_starts_exactly_at_onset(self):
        ds = _dataset(n_train=100, flip=0.0)
        transform = permute_labels(N_CLASSES, seed=2)
        stream = DriftStream(
            ReplayStream(ds, batch_size=10, n_samples=100, shuffle=False,
                         seed=0),
            transform, drift_at=55,
        )
        clean = list(ReplayStream(ds, batch_size=10, n_samples=100,
                                  shuffle=False, seed=0))
        for b, c in zip(stream, clean):
            idx = c.indices
            pre = idx < 55
            assert np.array_equal(b.y[pre], c.y[pre])
            assert np.array_equal(b.y[~pre], transform.permutation[c.y[~pre]])
            assert np.array_equal(b.X, c.X)  # label drift leaves X alone

    def test_sliding_window_ramp_is_gradual(self):
        ds = _dataset(n_train=400, flip=0.0)
        stream = DriftStream(
            ReplayStream(ds, batch_size=50, n_samples=400, shuffle=False,
                         seed=0),
            flip_features(N_FEATURES, fraction=0.5, seed=4),
            drift_at=100, width=200, seed=7,
        )
        clean = list(ReplayStream(ds, batch_size=50, n_samples=400,
                                  shuffle=False, seed=0))
        drift_frac = []
        for b, c in zip(stream, clean):
            changed = np.any(b.X != c.X, axis=1)
            drift_frac.append(changed.mean())
            assert np.array_equal(b.y, c.y)  # feature drift leaves y alone
        assert drift_frac[0] == 0.0            # before onset
        assert 0 < drift_frac[3] < 1.0         # mid-ramp: mixed concepts
        assert drift_frac[-1] == 1.0           # past the window
        assert drift_frac == sorted(drift_frac)

    def test_permutation_has_no_fixed_points(self):
        for seed in range(5):
            perm = permute_labels(6, seed=seed).permutation
            assert not np.any(perm == np.arange(6))

    def test_validation(self):
        ds = _dataset(n_train=10)
        with pytest.raises(ValueError):
            ReplayStream(ds, batch_size=0)
        with pytest.raises(ValueError):
            DriftStream(ReplayStream(ds), lambda X, y: (X, y), drift_at=-1)
        with pytest.raises(ValueError):
            permute_labels(1)
        with pytest.raises(ValueError):
            flip_features(8, fraction=0.0)


# ----------------------------------------------------------------------
# Online trainer
# ----------------------------------------------------------------------
class TestOnlineTrainer:
    def test_prequential_accuracy_rises_on_learnable_stream(self):
        ds = _dataset()
        trainer = OnlineTrainer(_factory(1))
        trainer.run(ReplayStream(ds, batch_size=32, n_samples=600, seed=2))
        assert trainer.samples_seen == 600
        assert trainer.prequential_accuracy > 0.6
        d = trainer.to_dict()
        assert d["samples_seen"] == 600

    def test_rejects_machines_without_partial_fit(self):
        with pytest.raises(TypeError, match="partial_fit"):
            OnlineTrainer(object())


# ----------------------------------------------------------------------
# Drift detector
# ----------------------------------------------------------------------
class TestDriftDetector:
    def test_fires_on_mean_shift_and_restarts(self):
        det = DriftDetector(window=200, min_samples=30, check_every=5)
        rng = np.random.default_rng(0)
        assert not det.update(rng.random(300) < 0.9)
        fired = det.update(rng.random(150) < 0.2)
        assert fired
        assert det.detections and 300 < det.detections[0] <= 450
        # Window restarted: steady post-drift accuracy does not re-fire.
        assert not det.update(rng.random(300) < 0.2)
        assert len(det.detections) == 1

    def test_stable_stream_never_fires(self):
        det = DriftDetector(window=300, check_every=5)
        rng = np.random.default_rng(1)
        assert not det.update(rng.random(2000) < 0.8)
        assert det.detections == []

    def test_small_dip_below_min_drop_ignored(self):
        det = DriftDetector(window=400, min_samples=50, min_drop=0.2,
                            check_every=5)
        rng = np.random.default_rng(2)
        det.update(rng.random(300) < 0.9)
        assert not det.update(rng.random(300) < 0.85)

    def test_deterministic(self):
        bits = (np.random.default_rng(3).random(600) < 0.7)
        bits[400:] = False
        dets = []
        for _ in range(2):
            det = DriftDetector(window=200, check_every=10)
            det.update(bits)
            dets.append(det.detections)
        assert dets[0] == dets[1] != []

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window=50, min_samples=30)
        with pytest.raises(ValueError):
            DriftDetector(delta=0.0)


# ----------------------------------------------------------------------
# Promoter
# ----------------------------------------------------------------------
class TestPromoter:
    def _trained(self, ds, seed, n=300):
        return _factory(seed).partial_fit(ds.X_train[:n], ds.y_train[:n])

    def test_promotes_better_challenger_and_rolls_back(self):
        ds = _dataset()
        weak = _factory(1).partial_fit(ds.X_train[:40], ds.y_train[:40])
        registry = Registry()
        registry.publish("m", weak)
        promoter = Promoter(registry, "m")
        strong = self._trained(ds, seed=2)
        record = promoter.promote(strong, ds.X_test, ds.y_test)
        assert record["promoted"] and record["new_version"] == 2
        assert registry.latest_version("m") == 2
        assert registry.pinned_version("m") is None  # unpinned after the window
        rb = promoter.rollback()
        assert rb["restored_version"] == 1 and rb["retracted_version"] == 2
        # Unversioned readers are pinned back to the known-good version;
        # the bad version stays queryable for the audit trail.
        assert registry.engine("m").version == 1
        assert registry.versions("m") == [1, 2]

    def test_rejects_weaker_challenger(self):
        ds = _dataset()
        strong = self._trained(ds, seed=1)
        registry = Registry()
        registry.publish("m", strong)
        promoter = Promoter(registry, "m", margin=0.01)
        weak = _factory(2).partial_fit(ds.X_train[:20], ds.y_train[:20])
        record = promoter.promote(weak, ds.X_test, ds.y_test)
        assert not record["promoted"]
        assert registry.latest_version("m") == 1
        assert promoter.history[-1] is record
        with pytest.raises(RuntimeError, match="no promotion"):
            promoter.rollback()

    def test_rejected_promotion_preserves_rollback_pin(self):
        # A rejection after a rollback must not unpin the known-good
        # version: unversioned readers would silently fall back to the
        # retracted latest.
        ds = _dataset()
        registry = Registry()
        registry.publish("m", _factory(1).partial_fit(ds.X_train[:40],
                                                      ds.y_train[:40]))
        promoter = Promoter(registry, "m")
        promoter.promote(self._trained(ds, seed=2), ds.X_test, ds.y_test)
        promoter.rollback()  # pins v1; v2 (retracted) is still latest
        assert registry.engine("m").version == 1
        weak = _factory(3).partial_fit(ds.X_train[:10], ds.y_train[:10])
        record = promoter.promote(weak, ds.X_test, ds.y_test)
        assert not record["promoted"]
        assert registry.pinned_version("m") == 1
        assert registry.engine("m").version == 1  # still the rolled-back one
        # A later *winning* promotion supersedes the rollback pin.
        strong = self._trained(ds, seed=4)
        record = promoter.promote(strong, ds.X_test, ds.y_test)
        assert record["promoted"]
        assert registry.pinned_version("m") is None
        assert registry.engine("m").version == record["new_version"]

    def test_shadow_sampling_is_seeded(self):
        ds = _dataset()
        registry = Registry()
        registry.publish("m", self._trained(ds, seed=1))
        reports = [
            Promoter(registry, "m", sample_fraction=0.5, seed=9)
            .shadow_evaluate(self._trained(ds, seed=2), ds.X_test, ds.y_test)
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert 0 < reports[0]["n_shadow"] < len(ds.X_test)


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def session_and_report(self):
        ds = _dataset(n_train=900, flip=0.05)
        stream = DriftStream(
            ReplayStream(ds, batch_size=32, n_samples=2400, seed=5),
            permute_labels(N_CLASSES, seed=3),
            drift_at=1100,
        )
        session = StreamSession(
            stream, _factory, warmup=320, name="live",
            detector=DriftDetector(window=300, check_every=8),
            max_batch=32, label_delay=1, adapt_window=320, eval_window=200,
            seed=42,
        )
        return session, session.run()

    def test_no_dropped_requests_on_serving_path(self, session_and_report):
        _, report = session_and_report
        assert report["requests"] > 0
        assert report["served"] == report["requests"]
        assert report["unresolved"] == 0

    def test_drift_detected_with_bounded_delay(self, session_and_report):
        _, report = session_and_report
        assert report["detections"], report
        assert report["detection_delay"] is not None
        assert 0 <= report["detection_delay"] <= 400

    def test_challenger_promoted_through_registry(self, session_and_report):
        session, report = session_and_report
        assert len(report["promotions"]) == 1, report
        promo = report["promotions"][0]
        assert promo["new_version"] == 2
        assert promo["challenger_accuracy"] >= promo["champion_accuracy"]
        assert report["live_version"] == 2
        assert session.registry.versions("live") == [1, 2]
        # The serving engine is the published v2 snapshot, not a copy.
        assert session.batcher.engine is session.registry.engine("live", 2)

    def test_accuracy_collapses_then_recovers(self, session_and_report):
        _, report = session_and_report
        acc = report["accuracy"]
        assert acc["pre_drift"] > 0.85
        assert acc["post_drift_pre_promotion"] < 0.5
        assert acc["post_promotion"] > acc["post_drift_pre_promotion"] + 0.3

    def test_rollback_restores_prior_version(self, session_and_report):
        session, _ = session_and_report
        record = session.rollback()
        assert record["restored_version"] == 1
        assert session.batcher.engine.version == 1
        assert session.registry.engine("live").version == 1  # pinned
        assert session.registry.versions("live") == [1, 2]
        assert session.report()["rollbacks"] == [record]

    def test_detection_during_active_challenger_restarts_it(self):
        # A firing mid-adapt must not be discarded: the half-trained
        # challenger is abandoned and a fresh one starts at the new
        # detection point (otherwise a real drift landing inside a
        # false-alarm's adapt window would never trigger adaptation).
        ds = _dataset(n_train=200)
        stream = ReplayStream(ds, batch_size=32, n_samples=4000, seed=1)
        session = StreamSession(
            stream, _factory, warmup=128,
            detector=DriftDetector(window=300, min_samples=30,
                                   check_every=5),
            adapt_window=600, eval_window=200,
        )
        session._warmup_and_publish(iter(session.stream))

        def feed(start, n, accuracy):
            # Drive _labels_arrived directly with fabricated served
            # predictions at a controlled accuracy.
            take = np.arange(start, start + n) % len(ds.X_train)
            from repro.streaming.sources import StreamBatch
            batch = StreamBatch(ds.X_train[take], ds.y_train[take], start)
            preds = batch.y.copy()
            wrong = np.random.default_rng(start).random(n) >= accuracy
            preds[wrong] = (preds[wrong] + 1) % N_CLASSES
            session._labels_arrived(batch, preds)

        feed(128, 300, 0.95)   # healthy serving
        feed(428, 200, 0.05)   # first shift -> detection + challenger
        assert len(session.report_events["detections"]) == 1
        first = session._challenger
        assert first is not None
        feed(628, 150, 0.95)   # recovered traffic refills the window...
        feed(778, 200, 0.05)   # ...and a second shift fires mid-adapt
        detections = session.report_events["detections"]
        assert len(detections) == 2
        assert detections[1]["restarted_challenger"] is True
        assert session._challenger is not first  # fresh challenger
        assert session._challenger_phase == "adapt"

    def test_run_stream_convenience(self):
        ds = _dataset(n_train=200)
        report = run_stream(
            ReplayStream(ds, batch_size=32, n_samples=500, seed=1),
            _factory, warmup=128, adapt_window=100, eval_window=100,
        )
        assert report["unresolved"] == 0
        assert report["live_version"] == 1  # no drift, no promotion
        assert report["detections"] == []
