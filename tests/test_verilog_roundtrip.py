"""Tests for the Verilog emitter and parser (round-trip verification)."""

import pytest

from repro.flow.verify import netlists_equivalent
from repro.rtl import (
    Netlist,
    bus_dff,
    bus_input,
    emit_verilog,
    parse_verilog,
    popcount,
    port_groups,
    subtract,
)
from repro.rtl.parser import VerilogSyntaxError


def small_design(share=True):
    nl = Netlist("unit", share=share)
    a = bus_input(nl, "a", 4)
    b = bus_input(nl, "b", 4)
    en = nl.add_input("en")
    rst = nl.add_input("rst")
    diff = subtract(nl, a, b)
    reg = bus_dff(nl, diff, en=en, rst=rst, name="r")
    pc = popcount(nl, list(a))
    for i, bit in enumerate(reg):
        nl.set_output(f"d[{i}]", bit)
    for i, bit in enumerate(pc):
        nl.set_output(f"p[{i}]", bit)
    nl.set_output("any", nl.g_or_tree(list(a)))
    return nl


class TestPortGroups:
    def test_bus_and_scalar(self):
        groups = port_groups(["d[0]", "d[1]", "d[2]", "go"])
        assert groups == {"d": 3, "go": None}

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            port_groups(["d[0]", "d[2]"])

    def test_collision_rejected(self):
        with pytest.raises(ValueError):
            port_groups(["d[0]", "d"])


class TestEmit:
    def test_module_header(self):
        src = emit_verilog(small_design())
        assert "module unit (" in src
        assert "input  wire [3:0] a" in src
        assert "output wire [4:0] d" in src
        assert src.strip().endswith("endmodule")

    def test_dont_touch_attribute_when_unshared(self):
        src = emit_verilog(small_design(share=False))
        assert '(* DONT_TOUCH = "yes" *)' in src
        assert '(* DONT_TOUCH = "yes" *)' not in emit_verilog(small_design())

    def test_clock_port_only_with_registers(self):
        nl = Netlist("comb")
        a = nl.add_input("a")
        nl.set_output("o", nl.g_not(a))
        src = emit_verilog(nl)
        assert "clk" not in src

    def test_block_banners(self):
        nl = Netlist("blocks")
        a = nl.add_input("a")
        b = nl.add_input("b")
        with nl.block("hcb0"):
            g = nl.g_and(a, b)
        nl.set_output("o", g)
        assert "block: hcb0" in emit_verilog(nl)


class TestRoundTrip:
    def test_equivalence(self):
        nl = small_design()
        re = parse_verilog(emit_verilog(nl))
        assert netlists_equivalent(nl, re, n_cycles=32, seed=1)

    def test_equivalence_unshared(self):
        nl = small_design(share=False)
        re = parse_verilog(emit_verilog(nl))
        assert netlists_equivalent(nl, re, n_cycles=32, seed=2)

    def test_register_init_preserved(self):
        nl = Netlist("init")
        a = nl.add_input("a")
        r = nl.dff(a, init=1, name="r0")
        nl.set_output("o", r)
        re = parse_verilog(emit_verilog(nl))
        regs = [n for n in re.nodes if n.kind == "dff"]
        assert len(regs) == 1
        assert regs[0].init == 1

    def test_enable_only_register(self):
        nl = Netlist("en_only")
        a = nl.add_input("a")
        en = nl.add_input("en")
        nl.set_output("o", nl.dff(a, en=en))
        re = parse_verilog(emit_verilog(nl))
        assert netlists_equivalent(nl, re, n_cycles=24, seed=3)

    def test_rst_only_register(self):
        nl = Netlist("rst_only")
        a = nl.add_input("a")
        rst = nl.add_input("rst")
        nl.set_output("o", nl.dff(a, rst=rst, init=1))
        re = parse_verilog(emit_verilog(nl))
        assert netlists_equivalent(nl, re, n_cycles=24, seed=4)

    def test_free_running_register(self):
        nl = Netlist("free")
        a = nl.add_input("a")
        nl.set_output("o", nl.dff(a))
        re = parse_verilog(emit_verilog(nl))
        assert netlists_equivalent(nl, re, n_cycles=16, seed=5)


class TestParserErrors:
    def test_undefined_signal(self):
        src = (
            "module m (\n    input  wire a,\n    output wire o\n);\n"
            "  assign o = a & ghost;\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_double_assignment(self):
        src = (
            "module m (\n    input  wire a,\n    output wire o\n);\n"
            "  wire w;\n  assign w = a & a;\n  assign w = ~a;\n"
            "  assign o = w;\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_undriven_output(self):
        src = "module m (\n    input  wire a,\n    output wire o\n);\nendmodule\n"
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_garbage_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_verilog("module m (input wire a); %%% endmodule")

    def test_always_for_undeclared_reg(self):
        src = (
            "module m (\n    input  wire clk,\n    input  wire a,\n"
            "    output wire o\n);\n"
            "  always @(posedge clk) begin\n    r0 <= a;\n  end\n"
            "  assign o = a;\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_cross_reference_wire_and_reg(self):
        """Wires may read registers defined textually later and vice versa."""
        src = (
            "module m (\n    input  wire clk,\n    input  wire a,\n"
            "    output wire o\n);\n"
            "  wire w;\n  reg r0 = 1'b0;\n"
            "  assign w = r0 & a;\n"
            "  always @(posedge clk) begin\n    r0 <= w;\n  end\n"
            "  assign o = w;\nendmodule\n"
        )
        nl = parse_verilog(src)
        assert nl.register_count() == 1
