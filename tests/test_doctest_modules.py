"""Doctest wiring for the data, obs, serving and streaming packages (tier-1).

Two contracts:

* every executable example in the packages' docstrings passes (the same
  set CI runs via ``pytest --doctest-modules src/repro/data
  src/repro/obs src/repro/serving src/repro/streaming``);
* every *public* class and function in those packages carries a
  docstring with an example (``>>>``) — the docs generator renders those
  docstrings into ``docs/api/``, so an example-free public symbol is a
  documentation regression.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil

import pytest

DOCTESTED_PACKAGES = ("repro.data", "repro.obs", "repro.serving",
                      "repro.streaming")


def _modules():
    for package_name in DOCTESTED_PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in sorted(pkgutil.iter_modules(package.__path__),
                           key=lambda i: i.name):
            yield importlib.import_module(f"{package_name}.{info.name}")


MODULES = list(_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    result = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert result.failed == 0, (
        f"{module.__name__}: {result.failed} doctest failure(s)"
    )


def _public_symbols():
    seen = set()
    for module in MODULES:
        if module.__name__ in DOCTESTED_PACKAGES:
            continue  # package __init__ re-exports; covered at definition
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            yield pytest.param(obj, id=f"{module.__name__}.{name}")


@pytest.mark.parametrize("obj", list(_public_symbols()))
def test_every_public_symbol_has_an_example(obj):
    doc = inspect.getdoc(obj) or ""
    assert doc, f"{obj.__qualname__} has no docstring"
    assert ">>>" in doc, (
        f"{obj.__qualname__}'s docstring has no executable example "
        "(>>> ...); docs/api pages are generated from these docstrings"
    )
