"""RNG stream-skipping edge cases of the vectorized backend.

The vectorized backend's Type I path draws only the uniform rows of
selected clauses and *skips* the stream past the rest, promising the
exact stream position the reference backend's full-block draw leaves.
The equivalence suite exercises this only through whole training runs;
these tests pin the edge cases of ``_draw_rows``/``apply_type_i``
directly, pairing a reference and a vectorized backend on identical
automata and asserting, per scenario:

* identical post-feedback automaton states,
* identical RNG stream position (the next draw matches bit for bit).

Covered: zero-clause selection (with and without the convolutional
``always_draw`` convention), all-clauses-selected (the full-block path),
single rows at every boundary, dense spans (block-draw-then-slice path),
scattered sparse rows (run-by-run skip path), and generators without
O(log n) ``advance`` (draw-and-discard fallback).
"""

import numpy as np
import pytest

from repro.tsetlin import AutomataTeam, make_rng
from repro.tsetlin.backend import ReferenceBackend, VectorizedBackend

N_CLAUSES = 16
N_LITERALS = 24  # 2 * features
N_STATES = 31


def _paired_backends(seed=0):
    """Reference + vectorized backends over bit-identical automata."""
    rng = np.random.default_rng(seed)
    states = rng.integers(1, 2 * N_STATES + 1, (2, N_CLAUSES, N_LITERALS))
    teams = []
    for _ in range(2):
        team = AutomataTeam((2, N_CLAUSES, N_LITERALS), n_states=N_STATES)
        team.state[:] = states.astype(np.int16)
        teams.append(team)
    return ReferenceBackend(teams[0]), VectorizedBackend(teams[1])


def _literals(seed=1):
    return (np.random.default_rng(seed).random(N_LITERALS) < 0.5)


def _apply_both(mask, rng_kind="numpy", always_draw=False, seed=5,
                outputs=None, s=3.9, boost=False):
    """Run one Type I event on both backends; return (ref, vec, rngs)."""
    ref, vec = _paired_backends(seed=seed)
    mask = np.asarray(mask, dtype=bool)
    lit = _literals(seed=seed + 1)
    if outputs is None:
        outputs = vec.bank_outputs(0, lit)
    rngs = [make_rng(rng_kind, seed=99), make_rng(rng_kind, seed=99)]
    ref.apply_type_i(0, mask, outputs, lit, s, rngs[0],
                     boost_true_positive=boost, always_draw=always_draw)
    vec.apply_type_i(0, mask, outputs, lit, s, rngs[1],
                     boost_true_positive=boost, always_draw=always_draw)
    return ref, vec, rngs


def _assert_equivalent(ref, vec, rngs):
    assert np.array_equal(ref.team.state, vec.team.state), "states diverged"
    a, b = rngs[0].random((8,)), rngs[1].random((8,))
    assert np.array_equal(a, b), "RNG stream positions diverged"


# ----------------------------------------------------------------------
# Zero-clause selection
# ----------------------------------------------------------------------
class TestZeroClauseSelection:
    def test_empty_mask_consumes_nothing(self):
        """No selected clause, flat-machine convention: zero RNG draws."""
        ref, vec, rngs = _apply_both(np.zeros(N_CLAUSES, dtype=bool))
        _assert_equivalent(ref, vec, rngs)  # consumes 8 draws per stream
        # And the stream really is untouched: matches a fresh generator
        # (offset by the 8 draws the equivalence probe consumed).
        fresh = make_rng("numpy", seed=99)
        fresh.random((8,))
        assert np.array_equal(rngs[1].random((4,)), fresh.random((4,)))

    def test_empty_mask_always_draw_consumes_full_block(self):
        """CTM convention: the (clauses, literals) block burns even when
        nothing is selected — the skip must cover exactly that block."""
        ref, vec, rngs = _apply_both(np.zeros(N_CLAUSES, dtype=bool),
                                     always_draw=True)
        _assert_equivalent(ref, vec, rngs)  # consumes 8 draws per stream
        fresh = make_rng("numpy", seed=99)
        fresh.skip(N_CLAUSES * N_LITERALS)
        fresh.random((8,))
        assert np.array_equal(rngs[1].random((4,)), fresh.random((4,)))

    def test_empty_mask_leaves_states_untouched(self):
        ref, vec, rngs = _apply_both(np.zeros(N_CLAUSES, dtype=bool))
        fresh_ref, fresh_vec = _paired_backends(seed=5)
        assert np.array_equal(vec.team.state, fresh_vec.team.state)

    def test_type_ii_zero_fired_rows(self):
        """Type II with selected-but-unfired clauses must be a no-op."""
        ref, vec = _paired_backends(seed=7)
        lit = _literals(seed=8)
        mask = np.ones(N_CLAUSES, dtype=bool)
        outputs = np.zeros(N_CLAUSES, dtype=np.uint8)  # nothing fired
        before = vec.team.state.copy()
        ref.apply_type_ii(0, mask, outputs, lit)
        vec.apply_type_ii(0, mask, outputs, lit)
        assert np.array_equal(ref.team.state, vec.team.state)
        assert np.array_equal(vec.team.state, before)


# ----------------------------------------------------------------------
# All rows masked in / boundary singletons
# ----------------------------------------------------------------------
class TestMaskPatterns:
    @pytest.mark.parametrize("rng_kind", ["numpy", "xorshift",
                                          "cyclostationary"])
    def test_all_clauses_selected(self, rng_kind):
        """Full mask: the vectorized path must take the full-block draw."""
        ref, vec, rngs = _apply_both(np.ones(N_CLAUSES, dtype=bool),
                                     rng_kind=rng_kind)
        _assert_equivalent(ref, vec, rngs)

    @pytest.mark.parametrize("row", [0, N_CLAUSES // 2, N_CLAUSES - 1])
    def test_single_row(self, row):
        """One selected clause at each boundary: skip-before + skip-after."""
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[row] = True
        ref, vec, rngs = _apply_both(mask)
        _assert_equivalent(ref, vec, rngs)

    def test_dense_span_path(self):
        """Nearby rows (runs * 4 > span): one block draw, sliced."""
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[[3, 4, 6, 7]] = True  # span 5, 2 runs -> block path
        ref, vec, rngs = _apply_both(mask)
        _assert_equivalent(ref, vec, rngs)

    def test_scattered_sparse_path(self):
        """Far-apart rows (runs * 4 <= span): run-by-run skip path."""
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[[0, 5, 10, 15]] = True  # span 16, 4 runs -> run-by-run
        ref, vec, rngs = _apply_both(mask)
        _assert_equivalent(ref, vec, rngs)

    def test_contiguous_run_in_middle(self):
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[5:9] = True
        ref, vec, rngs = _apply_both(mask)
        _assert_equivalent(ref, vec, rngs)

    @pytest.mark.parametrize("boost", [False, True])
    def test_boost_variants(self, boost):
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[[1, 9]] = True
        ref, vec, rngs = _apply_both(mask, boost=boost)
        _assert_equivalent(ref, vec, rngs)

    @pytest.mark.parametrize("rng_kind", ["xorshift", "cyclostationary"])
    def test_sparse_rows_without_pcg_advance(self, rng_kind):
        """Generators whose skip() is draw-and-discard must still land on
        the same stream position as the reference full-block draw."""
        mask = np.zeros(N_CLAUSES, dtype=bool)
        mask[[2, 13]] = True
        ref, vec, rngs = _apply_both(mask, rng_kind=rng_kind)
        _assert_equivalent(ref, vec, rngs)


# ----------------------------------------------------------------------
# Stream-position accounting across consecutive events
# ----------------------------------------------------------------------
class TestStreamAccounting:
    def test_mixed_event_sequence_stays_aligned(self):
        """Alternating empty/sparse/full selections keep both streams in
        lockstep — the regime a real training epoch produces."""
        ref, vec = _paired_backends(seed=21)
        rng_ref = make_rng("numpy", seed=5)
        rng_vec = make_rng("numpy", seed=5)
        masks = [
            np.zeros(N_CLAUSES, dtype=bool),
            np.ones(N_CLAUSES, dtype=bool),
            np.zeros(N_CLAUSES, dtype=bool),
            np.zeros(N_CLAUSES, dtype=bool),
        ]
        masks[2][[0, 7, 14]] = True
        rng_data = np.random.default_rng(3)
        for i, mask in enumerate(masks):
            lit = rng_data.random(N_LITERALS) < 0.5
            out_ref = ref.bank_outputs(i % 2, lit)
            out_vec = vec.bank_outputs(i % 2, lit)
            assert np.array_equal(out_ref, out_vec)
            always = i == 3  # finish with an empty always_draw event
            ref.apply_type_i(i % 2, mask, out_ref, lit, 3.9, rng_ref,
                             always_draw=always)
            vec.apply_type_i(i % 2, mask, out_vec, lit, 3.9, rng_vec,
                             always_draw=always)
            assert np.array_equal(ref.team.state, vec.team.state)
        assert np.array_equal(rng_ref.random((16,)), rng_vec.random((16,)))

    def test_skip_after_integers_draw(self):
        """PCG64 buffers a spare 32-bit half after integers(); a skip in
        between must not desynchronize later integer draws (the NumpyRandom
        stash/restore path)."""
        rng_a = make_rng("numpy", seed=17)
        rng_b = make_rng("numpy", seed=17)
        assert rng_a.integers(0, 5) == rng_b.integers(0, 5)
        # a: skip 7 draws; b: materialize 7 draws.
        rng_a.skip(7)
        rng_b.random((7,))
        assert np.array_equal(rng_a.random((3,)), rng_b.random((3,)))
        assert rng_a.integers(0, 1000) == rng_b.integers(0, 1000)
