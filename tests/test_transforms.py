"""Property tests for the transformation layer (:mod:`repro.data.transforms`).

Hypothesis pins the layer's contracts:

* **seeded determinism** — building the same transform twice from the
  same parameters yields identical outputs, and applying one transform
  twice yields identical outputs (no RNG state consumed per call);
* **shape/dtype preservation** — every transform maps ``(n, f)`` uint8
  feature matrices to ``(n, f)`` uint8 matrices;
* **bijections** — label/feature permutations are true permutations and
  ``permute_labels`` is fixed-point free;
* **inverses** — ``compose(t, t.inverse)`` is the identity for every
  invertible transform, and composed inverses apply in reverse order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import transforms

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _features(n_samples, n_features, data_seed):
    rng = np.random.default_rng(data_seed)
    return (rng.random((n_samples, n_features)) < 0.4).astype(np.uint8)


def _labels(n_samples, n_classes, data_seed):
    rng = np.random.default_rng(data_seed + 1)
    return rng.integers(0, n_classes, size=n_samples).astype(np.int64)


@st.composite
def feature_batches(draw, max_features=48):
    n = draw(st.integers(min_value=1, max_value=12))
    f = draw(st.integers(min_value=1, max_value=max_features))
    return _features(n, f, draw(SEEDS))


@st.composite
def image_batches(draw, max_side=8):
    n = draw(st.integers(min_value=1, max_value=8))
    h = draw(st.integers(min_value=2, max_value=max_side))
    w = draw(st.integers(min_value=2, max_value=max_side))
    return (h, w), _features(n, h * w, draw(SEEDS))


class TestSeededDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(), fraction=st.floats(0.05, 1.0), seed=SEEDS)
    def test_flip_bits_pure_and_rebuildable(self, X, fraction, seed):
        n = X.shape[1]
        t1 = transforms.flip_bits(n, fraction=fraction, seed=seed)
        t2 = transforms.flip_bits(n, fraction=fraction, seed=seed)
        assert np.array_equal(t1.mask, t2.mask)
        a, _ = t1(X, None)
        b, _ = t1(X, None)
        c, _ = t2(X, None)
        assert np.array_equal(a, b) and np.array_equal(a, c)

    @settings(max_examples=40, deadline=None)
    @given(batch=image_batches(), seed=SEEDS,
           amplitude=st.floats(0.0, 3.0), cell=st.integers(1, 4))
    def test_pixel_jitter_pure_and_rebuildable(self, batch, seed, amplitude,
                                               cell):
        shape, X = batch
        t1 = transforms.pixel_jitter(shape, amplitude=amplitude, cell=cell,
                                     seed=seed)
        t2 = transforms.pixel_jitter(shape, amplitude=amplitude, cell=cell,
                                     seed=seed)
        a, _ = t1(X, None)
        b, _ = t1(X, None)
        c, _ = t2(X, None)
        assert np.array_equal(a, b) and np.array_equal(a, c)

    @settings(max_examples=40, deadline=None)
    @given(n_classes=st.integers(2, 32), seed=SEEDS)
    def test_permute_labels_rebuildable(self, n_classes, seed):
        t1 = transforms.permute_labels(n_classes, seed=seed)
        t2 = transforms.permute_labels(n_classes, seed=seed)
        assert np.array_equal(t1.permutation, t2.permutation)


class TestShapeDtypePreservation:
    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(), seed=SEEDS, data=st.data())
    def test_feature_transforms_preserve_shape_and_dtype(self, X, seed, data):
        n = X.shape[1]
        factory = data.draw(st.sampled_from([
            lambda: transforms.flip_bits(n, seed=seed),
            lambda: transforms.feature_dropout(n, fraction=0.3, seed=seed),
            lambda: transforms.quantization_shift(n, fraction=0.3, seed=seed),
            lambda: transforms.permute_features(n, seed=seed),
        ]))
        y = _labels(len(X), 4, seed)
        Xt, yt = factory()(X, y)
        assert Xt.shape == X.shape
        assert Xt.dtype == np.uint8
        assert set(np.unique(Xt)) <= {0, 1}
        assert yt is y  # feature transforms never touch labels

    @settings(max_examples=40, deadline=None)
    @given(batch=image_batches(), seed=SEEDS, data=st.data())
    def test_image_transforms_preserve_shape_and_dtype(self, batch, seed,
                                                       data):
        (h, w), X = batch
        factory = data.draw(st.sampled_from([
            lambda: transforms.shift_image((h, w), dy=1, dx=-1),
            lambda: transforms.pixel_jitter((h, w), seed=seed),
        ]))
        Xt, _ = factory()(X, None)
        assert Xt.shape == X.shape
        assert Xt.dtype == np.uint8


class TestBijections:
    @settings(max_examples=40, deadline=None)
    @given(n_classes=st.integers(2, 32), seed=SEEDS)
    def test_permute_labels_is_a_derangement(self, n_classes, seed):
        t = transforms.permute_labels(n_classes, seed=seed)
        perm = t.permutation
        assert sorted(perm.tolist()) == list(range(n_classes))
        assert not np.any(perm == np.arange(n_classes))  # no fixed points
        assert np.array_equal(t.inverse.permutation[perm],
                              np.arange(n_classes))

    @settings(max_examples=40, deadline=None)
    @given(n_features=st.integers(1, 64), seed=SEEDS)
    def test_permute_features_is_a_bijection(self, n_features, seed):
        t = transforms.permute_features(n_features, seed=seed)
        assert sorted(t.permutation.tolist()) == list(range(n_features))
        X = np.arange(n_features, dtype=np.uint8).reshape(1, -1) % 2
        Xt, _ = t(X, None)
        assert sorted(Xt[0].tolist()) == sorted(X[0].tolist())

    @settings(max_examples=40, deadline=None)
    @given(n_classes=st.integers(2, 32), seed=SEEDS, data_seed=SEEDS)
    def test_permute_labels_preserves_class_counts(self, n_classes, seed,
                                                   data_seed):
        y = _labels(64, n_classes, data_seed)
        _, yt = transforms.permute_labels(n_classes, seed=seed)(None, y)
        assert np.array_equal(np.sort(np.bincount(y, minlength=n_classes)),
                              np.sort(np.bincount(yt, minlength=n_classes)))


class TestInverses:
    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(), seed=SEEDS, data=st.data())
    def test_inverse_after_forward_is_identity(self, X, seed, data):
        n = X.shape[1]
        t = data.draw(st.sampled_from([
            transforms.flip_bits(n, seed=seed),
            transforms.permute_features(n, seed=seed),
        ]))
        y = _labels(len(X), 4, seed)
        Xr, yr = t.inverse(*t(X, y))
        assert np.array_equal(Xr, X)
        assert np.array_equal(yr, y)

    @settings(max_examples=40, deadline=None)
    @given(batch=image_batches(), dy=st.integers(-3, 3),
           dx=st.integers(-3, 3))
    def test_shift_inverse_is_identity(self, batch, dy, dx):
        shape, X = batch
        t = transforms.shift_image(shape, dy=dy, dx=dx)
        Xr, _ = t.inverse(*t(X, None))
        assert np.array_equal(Xr, X)

    @settings(max_examples=40, deadline=None)
    @given(side=st.integers(2, 8), k=st.integers(0, 7), data_seed=SEEDS)
    def test_rotate_inverse_is_identity(self, side, k, data_seed):
        X = _features(3, side * side, data_seed)
        t = transforms.rotate_image((side, side), quarter_turns=k)
        Xr, _ = t.inverse(*t(X, None))
        assert np.array_equal(Xr, X)

    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(max_features=32), seed=SEEDS)
    def test_composed_inverse_unwinds_in_reverse_order(self, X, seed):
        n = X.shape[1]
        chain = transforms.compose(
            transforms.flip_bits(n, fraction=0.5, seed=seed),
            transforms.permute_features(n, seed=seed + 1),
            transforms.permute_labels(3, seed=seed),
        )
        assert chain.inverse is not None
        y = _labels(len(X), 3, seed)
        Xr, yr = chain.inverse(*chain(X, y))
        assert np.array_equal(Xr, X)
        assert np.array_equal(yr, y)

    def test_compose_without_inverses_has_none(self):
        chain = transforms.compose(
            transforms.flip_bits(8, seed=0),
            transforms.feature_dropout(8, fraction=0.5, seed=0),
        )
        assert chain.inverse is None


class TestColumnSemantics:
    @settings(max_examples=40, deadline=None)
    @given(n_features=st.integers(2, 64), fraction=st.floats(0.05, 0.95),
           seed=SEEDS, data_seed=SEEDS)
    def test_feature_dropout_zeroes_only_dropped_columns(self, n_features,
                                                         fraction, seed,
                                                         data_seed):
        t = transforms.feature_dropout(n_features, fraction=fraction,
                                       seed=seed)
        X = _features(6, n_features, data_seed)
        Xt, _ = t(X, None)
        assert (Xt[:, t.dropped] == 0).all()
        kept = np.setdiff1d(np.arange(n_features), t.dropped)
        assert np.array_equal(Xt[:, kept], X[:, kept])
        assert len(t.dropped) >= 1

    @settings(max_examples=40, deadline=None)
    @given(n_features=st.integers(2, 64), fraction=st.floats(0.05, 0.95),
           value=st.sampled_from([0, 1]), seed=SEEDS, data_seed=SEEDS)
    def test_quantization_shift_saturates_only_masked_columns(
            self, n_features, fraction, value, seed, data_seed):
        t = transforms.quantization_shift(n_features, fraction=fraction,
                                          value=value, seed=seed)
        X = _features(6, n_features, data_seed)
        Xt, _ = t(X, None)
        assert (Xt[:, t.mask] == value).all()
        assert np.array_equal(Xt[:, ~t.mask], X[:, ~t.mask])

    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(), fraction=st.floats(0.05, 1.0), seed=SEEDS)
    def test_flip_bits_changes_exactly_masked_columns(self, X, fraction,
                                                      seed):
        t = transforms.flip_bits(X.shape[1], fraction=fraction, seed=seed)
        Xt, _ = t(X, None)
        assert np.array_equal(Xt ^ X, np.broadcast_to(t.mask, X.shape))
        assert t.mask.any()


class TestTransformsNeverMutateInputs:
    @settings(max_examples=40, deadline=None)
    @given(X=feature_batches(), seed=SEEDS, data=st.data())
    def test_inputs_left_untouched(self, X, seed, data):
        n = X.shape[1]
        t = data.draw(st.sampled_from([
            transforms.flip_bits(n, seed=seed),
            transforms.feature_dropout(n, fraction=0.3, seed=seed),
            transforms.quantization_shift(n, fraction=0.3, seed=seed),
            transforms.permute_features(n, seed=seed),
        ]))
        y = _labels(len(X), 4, seed)
        X_before, y_before = X.copy(), y.copy()
        t(X, y)
        assert np.array_equal(X, X_before)
        assert np.array_equal(y, y_before)
