"""Tests for the BNN/QNN training and FINN dataflow cost model."""

import numpy as np
import pytest

from repro.baselines import (
    QuantMLP,
    TABLE_II,
    binarize,
    choose_folding,
    estimate_finn,
    finn_topology,
    matador_spec,
    quantize_activation,
    quantize_symmetric,
    ste_grad_mask,
)


class TestQuantizePrimitives:
    def test_binarize_values(self):
        assert binarize(np.array([-2.0, 0.0, 3.0])).tolist() == [-1.0, 1.0, 1.0]

    def test_symmetric_1bit_is_sign(self):
        x = np.array([-0.7, 0.2])
        assert np.array_equal(quantize_symmetric(x, 1), binarize(x))

    def test_symmetric_2bit_levels(self):
        x = np.linspace(-1, 1, 9)
        q = quantize_symmetric(x, 2)
        assert set(np.round(np.unique(q), 6)) <= {-1.0, 0.0, 1.0}

    def test_activation_2bit_levels(self):
        x = np.linspace(0, 1, 13)
        q = quantize_activation(x, 2)
        assert len(np.unique(np.round(q, 6))) <= 4

    def test_quantize_clips(self):
        assert quantize_symmetric(np.array([5.0]), 2)[0] == 1.0
        assert quantize_activation(np.array([-3.0]), 2)[0] == 0.0

    def test_ste_mask(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        assert ste_grad_mask(x).tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.array([0.0]), 0)
        with pytest.raises(ValueError):
            quantize_activation(np.array([0.0]), 0)


class TestQuantMLP:
    def toy_data(self, n=200, seed=0, rule="bit"):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 2, size=(n, 10)).astype(np.uint8)
        if rule == "bit":
            y = X[:, 0].astype(np.int64)
        else:  # conjunction rule
            y = (X[:, 0] & X[:, 1]).astype(np.int64)
        return X, y

    def test_1bit_net_learns_bit_rule(self):
        X, y = self.toy_data()
        net = QuantMLP([10, 16, 2], weight_bits=1, act_bits=1, seed=1)
        net.fit(X, y, epochs=15, lr=2e-2)
        assert net.evaluate(X, y) > 0.85

    def test_2bit_quantization_trains(self):
        X, y = self.toy_data(seed=2, rule="and")
        net = QuantMLP([10, 32, 2], weight_bits=2, act_bits=2, seed=2)
        net.fit(X, y, epochs=25, lr=2e-2)
        assert net.evaluate(X, y) > 0.85

    def test_learns_realistic_kws_data(self, kws_dataset):
        """The FINN accuracy column path: QNN on the synthetic KWS6 set."""
        ds = kws_dataset
        net = QuantMLP([377, 64, 32, 6], weight_bits=1, act_bits=1, seed=0)
        net.fit(ds.X_train, ds.y_train, epochs=10, lr=1e-2)
        assert net.evaluate(ds.X_test, ds.y_test) > 0.8

    def test_weights_stay_clipped(self):
        X, y = self.toy_data()
        net = QuantMLP([10, 8, 2], seed=0)
        net.fit(X, y, epochs=3, lr=0.05)
        for layer in net.layers:
            assert np.abs(layer.W).max() <= 1.0

    def test_quantized_weights_are_binary(self):
        net = QuantMLP([4, 4, 2], weight_bits=1, seed=0)
        for layer in net.layers:
            assert set(np.unique(layer.quantized_weights())) <= {-1.0, 1.0}

    def test_parameter_bits(self):
        net = QuantMLP([10, 8, 2], weight_bits=2, seed=0)
        assert net.parameter_bits() == (10 * 8 + 8 * 2) * 2

    def test_layer_sizes_validated(self):
        with pytest.raises(ValueError):
            QuantMLP([10])

    def test_val_history(self):
        X, y = self.toy_data(n=80)
        net = QuantMLP([10, 8, 2], seed=0)
        hist = net.fit(X, y, epochs=2, X_val=X[:20], y_val=y[:20])
        assert len(hist) == 2
        assert "val_accuracy" in hist[0]


class TestFolding:
    def test_folds_divide_evenly(self):
        topo = finn_topology("mnist")
        foldings, target = choose_folding(topo)
        for f in foldings:
            assert f.neurons % f.pe == 0
            assert f.synapses % f.simd == 0
            assert f.fold <= target

    def test_tighter_target_needs_more_lanes(self):
        topo = finn_topology("mnist")
        loose, _ = choose_folding(topo, target_ii=1000)
        tight, _ = choose_folding(topo, target_ii=50)
        assert sum(f.lanes for f in tight) > sum(f.lanes for f in loose)

    def test_impossible_target_falls_back_to_parallel(self):
        topo = finn_topology("cifar2")
        foldings, _ = choose_folding(topo, target_ii=0)
        assert foldings[0].fold == 1  # fully parallel


class TestFinnEstimates:
    def test_throughput_matches_ii(self):
        est = estimate_finn(finn_topology("mnist"))
        assert est.throughput_inf_per_s == pytest.approx(
            est.clock_mhz * 1e6 / est.initiation_interval
        )

    def test_latency_exceeds_ii(self):
        est = estimate_finn(finn_topology("kws6"))
        assert est.latency_cycles > est.initiation_interval

    def test_bram_scales_with_weight_bits(self):
        est1 = estimate_finn(finn_topology("mnist"))    # 1-bit weights
        est2 = estimate_finn(finn_topology("fmnist"))   # 2-bit weights, larger
        assert est2.bram36 > est1.bram36

    def test_finn_carries_many_brams_vs_matador_three(self):
        """Table I shape: FINN BRAM >> MATADOR's constant 3."""
        for ds in TABLE_II:
            est = estimate_finn(finn_topology(ds))
            assert est.bram36 > 3.0

    def test_resource_report_device_row(self):
        est = estimate_finn(finn_topology("cifar2"))
        row = est.table_row()
        assert row["LUTs"] == est.luts
        assert row["Clock (MHz)"] == 100.0

    def test_power_uses_higher_toggle(self):
        est = estimate_finn(finn_topology("kws6"))
        p = est.power()
        assert p.total_w > 1.8  # dense engines burn visibly more than idle PS


class TestTableII:
    def test_all_five_datasets_present(self):
        assert set(TABLE_II) == {"mnist", "kws6", "cifar2", "fmnist", "kmnist"}

    def test_paper_topologies(self):
        assert finn_topology("mnist").layer_sizes == (784, 64, 64, 64, 10)
        assert finn_topology("kws6").layer_sizes == (377, 512, 256, 6)
        assert finn_topology("cifar2").layer_sizes == (1024, 256, 128, 2)
        assert finn_topology("fmnist").layer_sizes == (784, 256, 256, 10)

    def test_paper_clause_budgets(self):
        assert matador_spec("mnist").clauses_per_class == 200
        assert matador_spec("kws6").clauses_per_class == 300
        assert matador_spec("cifar2").clauses_per_class == 1000
        assert matador_spec("fmnist").clauses_per_class == 500
        assert matador_spec("kmnist").clauses_per_class == 500

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            finn_topology("svhn")
