"""The shared inference mixin and its argmax tie-breaking contract.

The generated argmax tree uses strictly-greater comparisons, so ties must
break toward the **lower** class index everywhere — machine predict,
serving engine, frozen model.  Before the mixin each machine implemented
its own argmax; these tests pin the single shared implementation and the
tie convention on all of them.
"""

import numpy as np
import pytest

from _fixtures import random_model
from repro.model import TMModel
from repro.serving import InferenceEngine, snapshot_engine
from repro.tsetlin import (
    CoalescedTsetlinMachine,
    ConvolutionalTsetlinMachine,
    InferenceMixin,
    TsetlinMachine,
    argmax_lowest,
)


def test_argmax_lowest_convention():
    sums = np.array([
        [0, 0, 0],    # full tie -> class 0
        [-1, 5, 5],   # tie between 1 and 2 -> class 1
        [3, 3, 9],    # unique max
        [2, -2, 2],   # tie between 0 and 2 -> class 0
    ])
    assert argmax_lowest(sums).tolist() == [0, 1, 2, 0]


def test_all_machines_share_the_mixin():
    for cls in (TsetlinMachine, CoalescedTsetlinMachine,
                ConvolutionalTsetlinMachine):
        assert issubclass(cls, InferenceMixin)
        # One argmax implementation — no per-machine re-implementation.
        assert cls.predict is InferenceMixin.predict
        assert cls.evaluate is InferenceMixin.evaluate
        assert cls.class_sums is InferenceMixin.class_sums


def _tie_include(n_features=4):
    """Include matrix with engineered class sums [-1, +1, +1] on X=1...1.

    Class 0: positive clause empty (pruned), negative clause fires -> -1.
    Classes 1 and 2: identical banks, positive clause fires -> +1.
    The winner must be class 1 (the lower index of the tie).
    """
    include = np.zeros((3, 2, 2 * n_features), dtype=bool)
    include[0, 1, 0] = True  # class 0, odd (negative) clause: feature 0
    include[1, 0, 0] = True  # class 1, even (positive) clause: feature 0
    include[2, 0, 0] = True  # class 2: identical to class 1
    return include


def test_tie_breaking_flat_machine_and_engine_and_model():
    include = _tie_include()
    X = np.ones((1, 4), dtype=np.uint8)

    model = TMModel(include=include, n_features=4, name="tie")
    assert model.class_sums(X).tolist() == [[-1, 1, 1]]
    assert model.predict(X).tolist() == [1]

    tm = TsetlinMachine(3, 4, n_clauses=2, T=2, seed=0, backend="vectorized")
    N = tm.team.n_states
    tm.team.state[:] = np.where(include, N + 1, N)
    tm.backend.sync()
    assert tm.class_sums(X).tolist() == [[-1, 1, 1]]
    assert tm.predict(X).tolist() == [1]

    engine = InferenceEngine.from_model(model)
    assert engine.predict(X).tolist() == [1]


def test_tie_breaking_all_empty_picks_class_zero():
    tm = TsetlinMachine(3, 4, n_clauses=2, T=2, seed=0, backend="vectorized")
    tm.team.state[:] = 1  # everything excluded -> every clause pruned
    tm.backend.sync()
    X = np.ones((2, 4), dtype=np.uint8)
    assert tm.class_sums(X).tolist() == [[0, 0, 0], [0, 0, 0]]
    assert tm.predict(X).tolist() == [0, 0]
    assert snapshot_engine(tm).predict(X).tolist() == [0, 0]


def test_tie_breaking_coalesced_weights():
    co = CoalescedTsetlinMachine(3, 4, n_clauses=1, T=2, seed=0,
                                 backend="vectorized")
    N = co.team.n_states
    co.team.state[:] = N  # exclude all
    co.team.state[0, 0, 0] = N + 1  # single clause includes feature 0
    co.backend.sync()
    co.weights[:] = np.array([[2], [5], [5]], dtype=np.int32)
    X = np.ones((1, 4), dtype=np.uint8)
    assert co.class_sums(X).tolist() == [[2, 5, 5]]
    assert co.predict(X).tolist() == [1]
    assert snapshot_engine(co).predict(X).tolist() == [1]


def test_tie_breaking_convolutional():
    ctm = ConvolutionalTsetlinMachine(3, (3, 3), patch_shape=(2, 2),
                                      n_clauses=2, T=2, seed=0,
                                      backend="vectorized")
    N = ctm.team.n_states
    ctm.team.state[:] = N  # all excluded -> all clauses pruned
    # Classes 0..2: positive clause includes patch pixel 0 (always 1 on an
    # all-ones image), so every class sums to +1 except class 0, where the
    # negative clause also fires and cancels it.
    ctm.team.state[:, 0, 0] = N + 1
    ctm.team.state[0, 1, 0] = N + 1
    ctm.backend.sync()
    X = np.ones((1, 9), dtype=np.uint8)
    assert ctm.class_sums(X).tolist() == [[0, 1, 1]]
    assert ctm.predict(X).tolist() == [1]
    assert snapshot_engine(ctm).predict(X).tolist() == [1]


def test_mixin_vote_weights_shapes():
    tm = TsetlinMachine(3, 4, n_clauses=2, T=2, seed=0)
    assert tm.vote_weights().shape == (3, 2)
    assert tm.vote_weights()[0].tolist() == [1, -1]
    co = CoalescedTsetlinMachine(4, 4, n_clauses=3, T=2, seed=0)
    assert co.vote_weights().shape == (4, 3)
    ctm = ConvolutionalTsetlinMachine(2, (3, 3), patch_shape=(2, 2),
                                      n_clauses=4, T=2, seed=0)
    assert ctm.vote_weights().shape == (2, 4)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_packed_class_sums_bit_identical_all_machines(backend):
    """predict() routes through the packed kernel; it must equal the dense
    class_sums definition bit for bit on every machine kind and backend."""
    rng = np.random.default_rng(42)
    X = (rng.random((30, 16)) < 0.5).astype(np.uint8)
    y = rng.integers(0, 3, 30)

    tm = TsetlinMachine(3, 16, n_clauses=6, T=4, seed=1, backend=backend)
    tm.fit(X, y, epochs=1)
    assert np.array_equal(tm.packed_class_sums(X), tm.class_sums(X))
    assert np.array_equal(tm.predict(X), argmax_lowest(tm.class_sums(X)))

    co = CoalescedTsetlinMachine(3, 16, n_clauses=5, T=4, seed=2,
                                 backend=backend)
    co.fit(X, y, epochs=1)
    assert np.array_equal(co.packed_class_sums(X), co.class_sums(X))
    assert np.array_equal(co.predict(X), argmax_lowest(co.class_sums(X)))

    Xi = (rng.random((12, 16)) < 0.5).astype(np.uint8)
    yi = rng.integers(0, 2, 12)
    ctm = ConvolutionalTsetlinMachine(2, (4, 4), patch_shape=(2, 2),
                                      n_clauses=4, T=4, seed=3,
                                      backend=backend)
    ctm.fit(Xi, yi, epochs=1)
    # Convolutional machines fall back to the dense patch-OR path.
    assert np.array_equal(ctm.packed_class_sums(Xi), ctm.class_sums(Xi))
    assert np.array_equal(ctm.predict(Xi), argmax_lowest(ctm.class_sums(Xi)))


def test_engine_tie_breaking_matches_model_on_random_ties():
    """Randomized cross-check: wherever sums tie, all paths agree."""
    model = random_model(n_classes=4, n_clauses=6, n_features=10, seed=13)
    rng = np.random.default_rng(0)
    X = (rng.random((200, 10)) < 0.5).astype(np.uint8)
    engine = InferenceEngine.from_model(model)
    sums = model.class_sums(X)
    ties = (sums == sums.max(axis=1, keepdims=True)).sum(axis=1) > 1
    assert np.array_equal(engine.predict(X), model.predict(X))
    assert np.array_equal(model.predict(X), argmax_lowest(sums))
    # The property is only meaningful if ties actually occurred.
    assert ties.any()
