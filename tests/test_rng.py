"""Tests for the RNG substrate (numpy adapter, xorshift, cyclostationary)."""

import numpy as np
import pytest

from repro.tsetlin.rng import (
    CyclostationaryRandom,
    NumpyRandom,
    XorShift128Plus,
    make_rng,
)


class TestNumpyRandom:
    def test_range(self):
        rng = NumpyRandom(0)
        vals = rng.random((1000,))
        assert vals.min() >= 0.0
        assert vals.max() < 1.0

    def test_deterministic_by_seed(self):
        a = NumpyRandom(42).random((50,))
        b = NumpyRandom(42).random((50,))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = NumpyRandom(1).random((50,))
        b = NumpyRandom(2).random((50,))
        assert not np.array_equal(a, b)

    def test_bernoulli_rate(self):
        rng = NumpyRandom(0)
        draws = rng.bernoulli(0.3, (20000,))
        assert abs(draws.mean() - 0.3) < 0.02

    def test_bernoulli_extremes(self):
        rng = NumpyRandom(0)
        assert not rng.bernoulli(0.0, (100,)).any()
        assert rng.bernoulli(1.0, (100,)).all()

    def test_integers_in_range(self):
        rng = NumpyRandom(0)
        vals = [rng.integers(3, 7) for _ in range(200)]
        assert set(vals) <= {3, 4, 5, 6}
        assert len(set(vals)) > 1


class TestXorShift:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            XorShift128Plus(0)

    def test_range_and_shape(self):
        rng = XorShift128Plus(1)
        vals = rng.random((7, 3))
        assert vals.shape == (7, 3)
        assert (vals >= 0).all() and (vals < 1).all()

    def test_deterministic(self):
        a = XorShift128Plus(99).random((64,))
        b = XorShift128Plus(99).random((64,))
        assert np.array_equal(a, b)

    def test_mean_near_half(self):
        vals = XorShift128Plus(7).random((4000,))
        assert abs(vals.mean() - 0.5) < 0.03

    def test_scalar_shape(self):
        v = XorShift128Plus(5).random(())
        assert isinstance(float(v), float)


class TestCyclostationary:
    def test_bank_replay_is_periodic(self):
        rng = CyclostationaryRandom(bank_size=101, seed=0, stride=7)
        first = rng.random((101,))
        second = rng.random((101,))
        # Same bank, different starting offset -> same multiset of values.
        assert np.allclose(np.sort(first), np.sort(second))

    def test_small_bank_rejected(self):
        with pytest.raises(ValueError):
            CyclostationaryRandom(bank_size=1)

    def test_stride_coprime_adjustment(self):
        # stride sharing a factor with bank size must be fixed up internally.
        rng = CyclostationaryRandom(bank_size=100, seed=0, stride=10)
        vals = rng.random((100,))
        assert len(np.unique(vals)) > 50  # visits many bank entries

    def test_bernoulli_rate(self):
        rng = CyclostationaryRandom(seed=3)
        draws = rng.bernoulli(0.25, (20000,))
        assert abs(draws.mean() - 0.25) < 0.02


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("numpy", NumpyRandom),
        ("xorshift", XorShift128Plus),
        ("cyclostationary", CyclostationaryRandom),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_rng(kind, seed=1), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_rng("quantum")


class TestTrainingWithHardwareRngs:
    """The hardware RNG models must actually train a TM (refs [20], [21])."""

    @pytest.mark.parametrize("kind", ["xorshift", "cyclostationary"])
    def test_tm_learns_with_hw_rng(self, kind):
        from repro.tsetlin import TsetlinMachine

        rng = np.random.default_rng(0)
        n = 120
        X = rng.integers(0, 2, size=(n, 12)).astype(np.uint8)
        y = X[:, 0].astype(np.int64)  # trivially separable
        tm = TsetlinMachine(2, 12, n_clauses=6, T=6, s=3.0,
                            rng=make_rng(kind, seed=5))
        tm.fit(X, y, epochs=5)
        assert tm.evaluate(X, y) > 0.9
