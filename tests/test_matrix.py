"""Tests for the cross-dataset scenario matrix (:mod:`repro.sweep.matrix`).

Two layers: fast unit tests over a hand-built :class:`SweepResult` (report
structure, per-dataset grouping, Pareto fronts, rendering), and a small
end-to-end slice through the real flow asserting the report is
byte-identical across a fresh run and a cache resume — the invariant the
nightly ``scenario-matrix`` CI job diffs for.
"""

import io
import json

from repro.data import DATASET_REGISTRY
from repro.flow import FlowConfig
from repro.flow.cli import build_parser, main
from repro.sweep import (
    MATRIX_OBJECTIVES,
    MatrixResult,
    SweepPoint,
    SweepResult,
    SweepSpec,
    run_matrix,
)


def _point(dataset, key, accuracy=None, latency=None, luts=None, error=None):
    metrics = {}
    if error is None:
        metrics = {"accuracy": accuracy, "latency_us": latency, "luts": luts}
    return SweepPoint(
        config={"dataset": dataset, "clauses_per_class": 8, "T": 10,
                "s": 5.0, "model_family": "flat", "bus_width": 64},
        metrics=metrics,
        key=key,
        error=error,
    )


def _fixture_result():
    points = [
        # kws6: b dominates a (better accuracy, same cost); c trades off.
        _point("kws6", "a" * 16, accuracy=0.70, latency=5.0, luts=100),
        _point("kws6", "b" * 16, accuracy=0.80, latency=5.0, luts=100),
        _point("kws6", "c" * 16, accuracy=0.75, latency=2.0, luts=80),
        # tab-rules: one ok point, one errored point.
        _point("tab-rules", "d" * 16, accuracy=0.90, latency=3.0, luts=60),
        _point("tab-rules", "e" * 16, error="boom"),
    ]
    return MatrixResult(sweep=SweepResult(points=points))


class TestMatrixResult:
    def test_datasets_sorted(self):
        assert _fixture_result().datasets == ["kws6", "tab-rules"]

    def test_points_grouped_by_dataset(self):
        result = _fixture_result()
        assert len(result.points_for("kws6")) == 3
        assert len(result.points_for("tab-rules")) == 2

    def test_pareto_excludes_dominated_and_errored(self):
        result = _fixture_result()
        kws6_keys = {p.key for p in result.pareto_for("kws6")}
        assert kws6_keys == {"b" * 16, "c" * 16}  # "a" dominated by "b"
        tab_keys = {p.key for p in result.pareto_for("tab-rules")}
        assert tab_keys == {"d" * 16}  # errored point never on the front

    def test_report_structure(self):
        report = _fixture_result().report()
        assert report["schema"] == "repro.sweep.matrix/1"
        assert report["objectives"] == [list(o) for o in MATRIX_OBJECTIVES]
        assert report["n_datasets"] == 2
        assert report["n_points"] == 5
        assert report["n_errors"] == 1
        kws6 = report["datasets"]["kws6"]
        assert kws6["n_points"] == 3 and kws6["n_errors"] == 0
        assert kws6["best_accuracy"] == 0.80
        assert kws6["best_latency_us"] == 2.0
        assert kws6["best_luts"] == 80
        tab = report["datasets"]["tab-rules"]
        assert tab["n_errors"] == 1
        assert report["pareto_keys"] == sorted(
            ["b" * 16, "c" * 16, "d" * 16]
        )

    def test_report_is_json_stable(self):
        result = _fixture_result()
        text = result.to_json()
        assert text == result.to_json()
        assert json.loads(text)["schema"] == "repro.sweep.matrix/1"

    def test_markdown_renders_every_dataset_and_member(self):
        md = _fixture_result().to_markdown()
        assert "| kws6 |" in md and "| tab-rules |" in md
        assert "n/a" not in md.split("## Pareto members")[1]
        assert md.count("| kws6 | ") >= 1

    def test_summary_counts(self):
        assert _fixture_result().summary() == (
            "matrix: 5 points across 2 datasets (1 errors), 3 Pareto members"
        )


def _tiny_spec(datasets=("kws6", "tab-rules")):
    base = FlowConfig(n_train=48, n_test=24, epochs=1, verify_samples=2)
    return SweepSpec.from_grid(
        base=base, dataset=list(datasets), clauses_per_class=[4], T=[8],
    )


class TestRunMatrix:
    def test_fresh_and_resumed_reports_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        fresh = run_matrix(_tiny_spec(), cache_dir=cache)
        resumed = run_matrix(_tiny_spec(), cache_dir=cache, resume=True)
        assert all(p.cached for p in resumed.sweep.points)
        assert fresh.to_json() == resumed.to_json()
        assert fresh.to_markdown() == resumed.to_markdown()

    def test_every_dataset_produces_metrics(self, tmp_path):
        result = run_matrix(_tiny_spec(), cache_dir=tmp_path / "c")
        assert result.sweep.errors == []
        for name in result.datasets:
            entry = result.report()["datasets"][name]
            assert entry["best_accuracy"] is not None
            assert entry["best_latency_us"] is not None
            assert entry["best_luts"] is not None
            assert entry["pareto"]


class TestMatrixCli:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_matrix_report_deterministic_across_runs(self, tmp_path):
        args = [
            "matrix", "--dataset", "kws6,tab-rules", "--clauses", "4",
            "--T", "8", "--epochs", "1", "--train", "48", "--test", "24",
            "--cache-dir", str(tmp_path / "cache"), "--resume",
        ]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        md = tmp_path / "report.md"
        code, text = self.run_cli(
            args + ["--report", str(first), "--markdown", str(md)]
        )
        assert code == 0
        assert "matrix: 2 points across 2 datasets" in text
        code, _ = self.run_cli(args + ["--report", str(second)])
        assert code == 0
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text(encoding="utf-8"))
        assert report["schema"] == "repro.sweep.matrix/1"
        assert sorted(report["datasets"]) == ["kws6", "tab-rules"]
        assert "# Cross-dataset Pareto matrix" in md.read_text(
            encoding="utf-8"
        )

    def test_json_mode_prints_report_only(self, tmp_path):
        code, text = self.run_cli([
            "matrix", "--dataset", "kws6", "--clauses", "4", "--T", "8",
            "--epochs", "1", "--train", "48", "--test", "24",
            "--cache-dir", str(tmp_path / "cache"), "--json",
        ])
        assert code == 0
        assert json.loads(text)["n_datasets"] == 1

    def test_dataset_all_expands_to_whole_registry(self):
        args = build_parser().parse_args([
            "matrix", "--clauses", "4", "--T", "8",
        ])
        assert args.dataset == "all"
        from repro.flow.cli import _spec_from_args

        spec = _spec_from_args(args)
        names = sorted({p.dataset for p in spec.points})
        assert names == sorted(DATASET_REGISTRY)
        assert len(spec.points) == len(DATASET_REGISTRY)

    def test_dataset_all_dedupes_against_explicit_names(self):
        args = build_parser().parse_args([
            "matrix", "--dataset", "kws6,all,kws6", "--clauses", "4",
            "--T", "8",
        ])
        from repro.flow.cli import _spec_from_args

        spec = _spec_from_args(args)
        names = [p.dataset for p in spec.points]
        assert len(names) == len(set(names)) == len(DATASET_REGISTRY)
        assert names[0] == "kws6"  # explicit order wins over the expansion

    def test_datasets_lists_whole_registry(self):
        code, text = self.run_cli(["datasets"])
        assert code == 0
        lines = [line for line in text.strip().splitlines() if line]
        assert len(lines) >= 12
        for name in DATASET_REGISTRY:
            assert name in text
