"""The dataset-registry contract, parametrized over every entry.

Every spec in ``DATASET_REGISTRY`` must satisfy the same gauntlet:

* registered under its canonical name (one ``normalize_name`` for keys
  and lookups);
* the generator is a pure function of its seed (bit-identical arrays on
  repeated loads, different arrays under a different seed);
* the arrays match the spec's declared shape / classes / dtype, and the
  registry metadata is stamped;
* the generator's own default split sizes equal the spec's;
* train-split class balance stays within the spec's declared tolerance
  (test splits are too small for a meaningful binomial bound);
* the spec round-trips through ``to_dict`` / ``from_dict`` (via JSON).

Registering dataset #14 with wrong metadata fails here by construction.
"""

import functools
import inspect
import json

import numpy as np
import pytest

from repro.data import class_balance
from repro.data.registry import (
    DATASET_REGISTRY,
    DatasetSpec,
    get_spec,
    normalize_name,
)

NAMES = sorted(DATASET_REGISTRY)
CONTRACT_SEED = 123


def _contract_sizes(spec):
    """Split sizes divisible by n_classes (exact round-robin balance) and
    large enough that the RNG-class generators' binomial balance noise
    stays inside the declared tolerance."""
    return max(30 * spec.n_classes, 240), max(6 * spec.n_classes, 48)


@functools.lru_cache(maxsize=None)
def _load(name):
    spec = DATASET_REGISTRY[name]
    n_train, n_test = _contract_sizes(spec)
    return spec.load(n_train=n_train, n_test=n_test, seed=CONTRACT_SEED)


@pytest.mark.parametrize("name", NAMES)
class TestRegistryContract:
    def test_registered_under_canonical_key(self, name):
        spec = DATASET_REGISTRY[name]
        assert normalize_name(spec.name) == spec.name == name
        assert get_spec(name) is spec
        assert get_spec(name.upper()) is spec
        assert get_spec(name.replace("-", "_")) is spec

    def test_generator_is_pure_function_of_seed(self, name):
        spec = DATASET_REGISTRY[name]
        a = spec.load(n_train=24, n_test=12, seed=7)
        b = spec.load(n_train=24, n_test=12, seed=7)
        other = spec.load(n_train=24, n_test=12, seed=8)
        for attr in ("X_train", "y_train", "X_test", "y_test"):
            assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr
        assert not np.array_equal(a.X_train, other.X_train)

    def test_arrays_match_spec(self, name):
        spec = DATASET_REGISTRY[name]
        n_train, n_test = _contract_sizes(spec)
        ds = _load(name)
        assert spec.n_features == int(np.prod(spec.input_shape))
        assert ds.n_features == spec.n_features
        assert ds.n_classes == spec.n_classes
        assert ds.X_train.shape == (n_train, spec.n_features)
        assert ds.X_test.shape == (n_test, spec.n_features)
        assert ds.X_train.dtype == np.uint8
        assert set(np.unique(ds.X_train)) <= {0, 1}
        assert set(np.unique(ds.y_train)) == set(range(spec.n_classes))
        assert ds.y_test.min() >= 0 and ds.y_test.max() < spec.n_classes

    def test_registry_metadata_stamped(self, name):
        spec = DATASET_REGISTRY[name]
        ds = _load(name)
        assert ds.metadata["registry_name"] == name
        assert ds.metadata["family"] == spec.family
        assert tuple(ds.metadata["input_shape"]) == spec.input_shape
        assert ds.metadata["booleanization"] == spec.booleanization
        if spec.family == "image":
            assert tuple(ds.metadata["image_shape"]) == spec.input_shape

    def test_default_split_sizes_match_generator(self, name):
        spec = DATASET_REGISTRY[name]
        params = inspect.signature(spec.generator).parameters
        assert params["n_train"].default == spec.n_train
        assert params["n_test"].default == spec.n_test

    def test_class_balance_within_declared_tolerance(self, name):
        spec = DATASET_REGISTRY[name]
        ds = _load(name)
        uniform = 1.0 / spec.n_classes
        balance = class_balance(ds.y_train, spec.n_classes)
        deviation = float(np.abs(balance - uniform).max() / uniform)
        assert deviation <= spec.balance_tol, (
            f"{name}: worst train-split class fraction deviates "
            f"{deviation:.3f} from uniform (declared {spec.balance_tol})"
        )
        assert set(np.unique(ds.y_test)) <= set(range(spec.n_classes))

    def test_spec_round_trips_through_json(self, name):
        spec = DATASET_REGISTRY[name]
        payload = json.loads(json.dumps(spec.to_dict()))
        rebuilt = DatasetSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.generator is spec.generator
        assert rebuilt.input_shape == spec.input_shape


def test_registry_is_large_enough():
    """The scenario matrix promises 12+ workloads."""
    assert len(DATASET_REGISTRY) >= 12


def test_families_are_typed():
    assert {spec.family for spec in DATASET_REGISTRY.values()} == {
        "image", "audio", "tabular", "text",
    }
