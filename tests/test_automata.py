"""Tests for Tsetlin Automata teams (state storage and transitions)."""

import numpy as np
import pytest

from repro.tsetlin.automata import AutomataTeam
from repro.tsetlin.rng import NumpyRandom


class TestInit:
    def test_boundary_initialization(self):
        team = AutomataTeam((2, 3, 8), n_states=10, rng=NumpyRandom(0))
        assert set(np.unique(team.state)) <= {10, 11}

    def test_no_rng_is_deterministic_but_mixed(self):
        team = AutomataTeam((2, 2, 4), n_states=5)
        # Boundary init, alternating exclude/include: reproducible without
        # an rng, but not the degenerate all-exclude state.
        assert set(np.unique(team.state)) == {5, 6}
        assert team.include_fraction() == pytest.approx(0.5)
        clone = AutomataTeam((2, 2, 4), n_states=5)
        assert np.array_equal(team.state, clone.state)

    def test_invalid_states(self):
        with pytest.raises(ValueError):
            AutomataTeam((1, 1, 2), n_states=0)


class TestActions:
    def test_threshold(self):
        team = AutomataTeam((1, 1, 4), n_states=3)
        team.state[:] = np.array([1, 3, 4, 6], dtype=np.int16)
        assert team.actions().ravel().tolist() == [False, False, True, True]

    def test_include_fraction(self):
        team = AutomataTeam((1, 1, 4), n_states=3)
        team.state[:] = np.array([1, 4, 4, 2], dtype=np.int16)
        assert team.include_fraction() == pytest.approx(0.5)


class TestTransitions:
    def test_reinforce_clamps_high(self):
        team = AutomataTeam((1, 1, 3), n_states=4)
        team.state[:] = 8
        team.reinforce(np.ones((1, 1, 3), dtype=np.int16) * 5)
        assert (team.state == 8).all()

    def test_reinforce_clamps_low(self):
        team = AutomataTeam((1, 1, 3), n_states=4)
        team.state[:] = 1
        team.reinforce(-np.ones((1, 1, 3), dtype=np.int16))
        assert (team.state == 1).all()

    def test_step_up_masked(self):
        team = AutomataTeam((1, 1, 4), n_states=5)
        before = team.state.copy()
        mask = np.zeros((1, 1, 4), dtype=bool)
        mask[0, 0, 1] = True
        team.step_up(mask)
        assert team.state[0, 0, 1] == before[0, 0, 1] + 1
        unchanged = np.delete(team.state.ravel(), 1)
        assert np.array_equal(unchanged, np.delete(before.ravel(), 1))

    def test_step_down_masked(self):
        team = AutomataTeam((1, 1, 4), n_states=5)
        team.state[:] = 7
        mask = np.ones((1, 1, 4), dtype=bool)
        team.step_down(mask)
        assert (team.state == 6).all()


class TestSerialization:
    def test_roundtrip(self):
        team = AutomataTeam((2, 2, 6), n_states=9, rng=NumpyRandom(4))
        team.state[0, 0, 0] = 17
        clone = AutomataTeam.from_dict(team.to_dict())
        assert clone.n_states == team.n_states
        assert clone.shape == team.shape
        assert np.array_equal(clone.state, team.state)

    def test_repr_contains_fraction(self):
        team = AutomataTeam((1, 1, 4), n_states=3)
        assert "include_fraction" in repr(team)
