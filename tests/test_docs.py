"""Documentation gates: fresh API reference, honest README, live links.

Three ways docs rot, three tests:

* the committed ``docs/api/*.md`` drift from the docstrings they were
  generated from — regenerating must be a no-op (the same gate CI runs
  via ``python docs/gen_api.py --check``);
* the README layer map drifts from the actual ``src/repro`` packages —
  the map's first-column tokens must equal the package set exactly;
* a relative link in README/docs points at a file that moved or died.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load(script_name):
    """Import a docs/ script by path (docs/ is not a package)."""
    path = REPO / "docs" / script_name
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


def test_api_reference_is_fresh():
    gen_api = _load("gen_api.py")
    stale = []
    for path, content in gen_api.generate(REPO / "docs" / "api").items():
        on_disk = path.read_text(encoding="utf-8") if path.exists() else None
        if on_disk != content:
            stale.append(path.name)
    assert not stale, (
        f"stale API reference pages {stale}; regenerate with "
        "`PYTHONPATH=src python docs/gen_api.py` and commit the diff"
    )


def test_readme_layer_map_matches_packages():
    packages = {
        p.name for p in (REPO / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    _, _, after = readme.partition("## Layer map")
    assert after, "README has no '## Layer map' section"
    block = after.split("```")[1]
    rows = {
        line.split()[0]
        for line in block.splitlines()
        if line and not line[0].isspace()
    }
    missing = packages - rows
    stale = rows - packages
    assert not missing, f"README layer map is missing packages: {sorted(missing)}"
    assert not stale, f"README layer map lists dead packages: {sorted(stale)}"


def test_all_relative_links_resolve():
    check_links = _load("check_links.py")
    assert check_links.main() == 0
