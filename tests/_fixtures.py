"""Importable shared test helpers.

Lives in its own module (rather than ``conftest.py``) because both
``tests/`` and ``benchmarks/`` ship a ``conftest.py``; when pytest adds
both directories to ``sys.path`` the module name ``conftest`` is
ambiguous and ``from conftest import ...`` resolves to whichever was
imported first.  A uniquely named module sidesteps the clash.
"""

from __future__ import annotations

import numpy as np

from repro.model import TMModel


def random_model(n_classes=3, n_clauses=8, n_features=24, density=0.12,
                 seed=0, name="rand"):
    """A random (untrained) include matrix — enough for structural tests."""
    rng = np.random.default_rng(seed)
    include = rng.random((n_classes, n_clauses, 2 * n_features)) < density
    # Avoid contradictory literals so clause outputs are non-trivial.
    pos = include[:, :, :n_features]
    neg = include[:, :, n_features:]
    both = pos & neg
    neg &= ~both
    include = np.concatenate([pos, neg], axis=2)
    return TMModel(include=include, n_features=n_features, name=name)
