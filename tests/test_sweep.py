"""Tests for the parallel design-space exploration subsystem."""

import json

import pytest

from repro.flow import FlowConfig
from repro.sweep import (
    SweepCache,
    SweepSpec,
    parallel_map,
    pareto_front,
    run_sweep,
    sweep_key,
)
from repro.tsetlin import grid_search, search_clause_budget
from test_search import make_task


def tiny_base(**overrides):
    base = dict(
        dataset="kws6", n_train=160, n_test=80, clauses_per_class=8,
        T=8, s=4.0, epochs=2, verify_samples=4,
    )
    base.update(overrides)
    return FlowConfig(**base)


# ----------------------------------------------------------------------
class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            {"acc": 0.9, "cost": 10},
            {"acc": 0.8, "cost": 12},   # dominated: worse on both
            {"acc": 0.95, "cost": 20},
            {"acc": 0.9, "cost": 15},   # dominated by the first point
        ]
        front = pareto_front(points, (("acc", "max"), ("cost", "min")))
        # Sorted by the first objective in minimize-form (-acc ascending).
        assert front == [points[2], points[0]]

    def test_senses_respected(self):
        points = [{"a": 1.0, "b": 1.0}, {"a": 2.0, "b": 2.0}]
        assert pareto_front(
            points, (("a", "max"), ("b", "max"))
        ) == [points[1]]
        assert pareto_front(
            points, (("a", "min"), ("b", "min"))
        ) == [points[0]]

    def test_incomplete_points_excluded(self):
        points = [{"acc": 0.9, "cost": None}, {"acc": 0.5, "cost": 3}]
        front = pareto_front(points, (("acc", "max"), ("cost", "min")))
        assert front == [points[1]]

    def test_duplicate_vectors_deduplicated(self):
        a = {"acc": 0.9, "cost": 10}
        front = pareto_front(
            [a, dict(a)], (("acc", "max"), ("cost", "min"))
        )
        assert len(front) == 1

    def test_search_frontier_delegates(self):
        X_tr, y_tr, X_val, y_val = make_task(seed=3)
        result, _ = search_clause_budget(
            X_tr, y_tr, X_val, y_val, start=4, max_clauses=32, epochs=2,
        )
        frontier = result.frontier()
        costs = [p.cost() for p in frontier]
        accs = [p.accuracy for p in frontier]
        assert costs == sorted(costs)
        assert accs == sorted(accs)


# ----------------------------------------------------------------------
class TestSweepCache:
    def test_key_is_order_insensitive(self):
        assert sweep_key({"a": 1, "b": 2}) == sweep_key({"b": 2, "a": 1})

    def test_key_changes_with_payload(self):
        assert sweep_key({"a": 1}) != sweep_key({"a": 2})

    def test_put_get_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = sweep_key({"x": 1})
        record = {"config": {"x": 1}, "metrics": {"accuracy": 0.5}}
        cache.put(key, record)
        loaded = cache.get(key)
        assert loaded["config"] == {"x": 1}
        assert loaded["metrics"]["accuracy"] == 0.5
        assert key in cache
        assert len(cache) == 1

    def test_missing_and_corrupt_are_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = sweep_key({"x": 1})
        assert cache.get(key) is None
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_cache_version_invalidates_old_records(self, monkeypatch):
        # The packed-word backend state layout landed in schema v2: any
        # key minted under an older version must not resolve records
        # written by the new code (and vice versa).
        from repro.sweep import cache as cache_mod

        payload = {"config": {"s": 5.0}, "seed": 1}
        assert cache_mod.CACHE_VERSION >= 2
        current = sweep_key(payload)
        monkeypatch.setattr(cache_mod, "CACHE_VERSION",
                            cache_mod.CACHE_VERSION - 1)
        assert cache_mod.sweep_key(payload) != current

    def test_foreign_record_rejected(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = sweep_key({"x": 1})
        other = sweep_key({"x": 2})
        cache.put(other, {"config": {}})
        # A record stored under the wrong key must not satisfy a lookup.
        cache.path(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text(
            cache.path(other).read_text(encoding="utf-8"), encoding="utf-8"
        )
        assert cache.get(key) is None


# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_grid_product(self):
        spec = SweepSpec.from_grid(
            base=tiny_base(),
            clauses_per_class=[8, 16],
            bus_width=[32, 64],
            T=[8],
        )
        assert len(spec) == 4
        assert {cfg.clauses_per_class for cfg in spec} == {8, 16}
        assert all(cfg.dataset == "kws6" for cfg in spec)

    def test_scalar_axis_promoted(self):
        spec = SweepSpec.from_grid(base=tiny_base(), T=12)
        assert len(spec) == 1
        assert spec.points[0].T == 12

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec.from_grid(base=tiny_base(), clauses=[8])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec.from_grid(base=tiny_base(), T=[])

    def test_from_file_grid_and_points(self, tmp_path):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps({
            "base": {"dataset": "kws6", "epochs": 2},
            "grid": {"clauses_per_class": [8, 16]},
        }))
        spec = SweepSpec.from_file(grid_path)
        assert len(spec) == 2

        points_path = tmp_path / "points.json"
        points_path.write_text(json.dumps({
            "points": [{"dataset": "mnist"}, {"dataset": "kws6"}],
        }))
        spec = SweepSpec.from_file(points_path)
        assert [cfg.dataset for cfg in spec] == ["mnist", "kws6"]

        bad_path = tmp_path / "bad.json"
        bad_path.write_text("{}")
        with pytest.raises(ValueError):
            SweepSpec.from_file(bad_path)


# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestParallelMap:
    def test_inline(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_pool_preserves_order(self):
        assert parallel_map(_square, list(range(8)), jobs=2) == [
            x * x for x in range(8)
        ]

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=0)

    def test_worker_error_propagates(self):
        with pytest.raises(RuntimeError):
            parallel_map(_boom, [1, 2], jobs=2)


# ----------------------------------------------------------------------
class TestRunSweep:
    @pytest.fixture(scope="class")
    def swept(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("sweep_cache")
        spec = SweepSpec.from_grid(
            base=tiny_base(),
            clauses_per_class=[8, 12],
            bus_width=[32, 64],
        )
        fresh = run_sweep(spec, jobs=1, cache_dir=cache_dir)
        resumed = run_sweep(spec, jobs=1, cache_dir=cache_dir)
        return spec, fresh, resumed

    def test_every_point_evaluated(self, swept):
        spec, fresh, _ = swept
        assert len(fresh) == len(spec) == 4
        assert not fresh.errors
        for point in fresh.points:
            assert 0.0 <= point.metric("accuracy") <= 1.0
            assert point.metric("luts") > 0
            assert point.metric("latency_us") > 0
            assert point.metric("total_power_w") > 0
            assert point.metric("verified") is None  # verify off by default

    def test_resume_hits_cache(self, swept):
        _, fresh, resumed = swept
        assert not any(p.cached for p in fresh.points)
        assert all(p.cached for p in resumed.points)

    def test_cached_report_bit_identical(self, swept):
        _, fresh, resumed = swept
        assert fresh.to_json() == resumed.to_json()
        assert fresh.to_csv() == resumed.to_csv()

    def test_pareto_front_nonempty_subset(self, swept):
        _, fresh, _ = swept
        front = fresh.pareto()
        assert 0 < len(front) <= len(fresh.points)
        keys = {p.key for p in fresh.points}
        assert all(p.key in keys for p in front)

    def test_report_structure(self, swept):
        _, fresh, _ = swept
        report = fresh.report()
        assert report["n_points"] == 4
        assert report["n_errors"] == 0
        assert len(report["points"]) == 4
        keys = [p["key"] for p in report["points"]]
        assert keys == sorted(keys)
        flagged = [p["key"] for p in report["points"] if p["pareto"]]
        assert flagged == report["pareto_keys"]
        json.dumps(report)  # must be JSON-serializable

    def test_errors_recorded_not_cached(self, tmp_path):
        spec = SweepSpec.from_points([{"dataset": "no_such_dataset"}])
        result = run_sweep(spec, cache_dir=tmp_path / "c")
        assert len(result.errors) == 1
        assert "no_such_dataset" in result.errors[0].error
        assert len(SweepCache(tmp_path / "c")) == 0
        # The erroring point still appears in the report, flagged.
        assert result.report()["n_errors"] == 1

    def test_no_cache_mode(self):
        spec = SweepSpec.from_points([tiny_base(epochs=1)])
        result = run_sweep(spec, cache_dir=None)
        assert len(result) == 1 and not result.points[0].cached

    def test_resume_false_recomputes(self, tmp_path):
        spec = SweepSpec.from_points([tiny_base(epochs=1)])
        first = run_sweep(spec, cache_dir=tmp_path / "c")
        second = run_sweep(spec, cache_dir=tmp_path / "c", resume=False)
        assert not second.points[0].cached
        assert first.to_json() == second.to_json()

    def test_convolutional_family_trains_without_hardware(self):
        spec = SweepSpec.from_points([
            tiny_base(dataset="mnist", n_train=100, n_test=60, epochs=1,
                      model_family="convolutional"),
        ])
        result = run_sweep(spec)
        point = result.points[0]
        assert point.ok
        assert point.metric("accuracy") is not None
        assert point.metric("luts") is None
        assert point.metric("latency_us") is None

    def test_progress_callback_fires_per_point(self, tmp_path):
        spec = SweepSpec.from_points([
            tiny_base(epochs=1),
            tiny_base(epochs=1, T=9),
        ])
        calls = []
        run_sweep(
            spec,
            cache_dir=tmp_path / "c",
            progress=lambda done, total, p: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]
        cached_flags = []
        run_sweep(
            spec,
            cache_dir=tmp_path / "c",
            progress=lambda done, total, p: cached_flags.append(p.cached),
        )
        assert cached_flags == [True, True]

    def test_verify_flag_records_verdict(self, tmp_path):
        spec = SweepSpec.from_points([tiny_base(epochs=1)])
        result = run_sweep(spec, cache_dir=tmp_path / "c", verify=True)
        assert result.points[0].metric("verified") is True
        # Verification participates in the cache key: the non-verifying
        # sweep of the same config must not reuse this record.
        plain = run_sweep(spec, cache_dir=tmp_path / "c")
        assert not plain.points[0].cached


# ----------------------------------------------------------------------
class TestSearchDelegation:
    def test_grid_search_parallel_matches_serial(self):
        X_tr, y_tr, X_val, y_val = make_task(seed=7)
        kwargs = dict(
            clause_grid=(4, 8), T_grid=(4, 8), s_grid=(3.0,),
            epochs=2, halving=True,
        )
        serial = grid_search(X_tr, y_tr, X_val, y_val, jobs=1, **kwargs)
        fanned = grid_search(X_tr, y_tr, X_val, y_val, jobs=2, **kwargs)
        assert serial.evaluated == fanned.evaluated
        assert serial.best == fanned.best

    def test_clause_budget_parallel_matches_serial(self):
        X_tr, y_tr, X_val, y_val = make_task(seed=8)
        kwargs = dict(start=4, max_clauses=32, epochs=2, tolerance=-1.0)
        serial, tm_s = search_clause_budget(
            X_tr, y_tr, X_val, y_val, jobs=1, **kwargs
        )
        fanned, tm_f = search_clause_budget(
            X_tr, y_tr, X_val, y_val, jobs=3, **kwargs
        )
        assert serial.evaluated == fanned.evaluated
        assert serial.best == fanned.best
        assert tm_s.team.state.tolist() == tm_f.team.state.tolist()

    def test_clause_budget_early_stop_discards_speculation(self):
        X_tr, y_tr, X_val, y_val = make_task(seed=9)
        kwargs = dict(start=4, max_clauses=64, epochs=2, tolerance=10.0)
        serial, _ = search_clause_budget(
            X_tr, y_tr, X_val, y_val, jobs=1, **kwargs
        )
        fanned, _ = search_clause_budget(
            X_tr, y_tr, X_val, y_val, jobs=4, **kwargs
        )
        # tolerance=10 stops at the second rung; the speculative wave must
        # not leak extra evaluated points into the result.
        assert [p.n_clauses for p in fanned.evaluated] == [
            p.n_clauses for p in serial.evaluated
        ]
