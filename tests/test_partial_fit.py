"""``partial_fit`` replay is bit-identical to ``fit`` for every family.

The continual-learning contract: chunked ``partial_fit`` calls over a
fixed overall sample order must leave the machine in exactly the state a
single ``fit(X, y, epochs=1, shuffle=False)`` over the concatenation
would — same automata states, same weights, same RNG position — for the
flat, coalesced, and convolutional families on both the reference and
vectorized backends.  That is what makes online training auditable: any
stream can be replayed offline through ``fit`` and must reproduce the
deployed model bit for bit.
"""

import numpy as np
import pytest

from repro.tsetlin import (
    CoalescedTsetlinMachine,
    ConvolutionalTsetlinMachine,
    TsetlinMachine,
)

BACKENDS = ("reference", "vectorized")


def _data(n=60, f=16, n_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    protos = rng.random((n_classes, f)) < 0.5
    y = rng.integers(0, n_classes, n)
    X = (protos[y] ^ (rng.random((n, f)) < 0.08)).astype(np.uint8)
    return X, y


def _image_data(n=36, side=6, seed=4):
    rng = np.random.default_rng(seed)
    X = (rng.random((n, side * side)) < 0.5).astype(np.uint8)
    return X, rng.integers(0, 2, n)


def _chunks(X, y, sizes):
    lo = 0
    for size in sizes:
        yield X[lo:lo + size], y[lo:lo + size]
        lo += size
    if lo < len(X):
        yield X[lo:], y[lo:]


@pytest.mark.parametrize("backend", BACKENDS)
class TestFlatBitIdentity:
    def _machine(self, backend):
        return TsetlinMachine(3, 16, n_clauses=8, T=5, s=3.5, seed=7,
                              backend=backend)

    def test_chunked_replay_equals_fit(self, backend):
        X, y = _data()
        ref = self._machine(backend)
        ref.fit(X, y, epochs=1, shuffle=False, track_metrics=False)
        inc = self._machine(backend)
        for cx, cy in _chunks(X, y, (17, 25, 3)):
            inc.partial_fit(cx, cy)
        assert np.array_equal(ref.team.state, inc.team.state)
        assert np.array_equal(ref.includes(), inc.includes())

    def test_two_passes_equal_two_epochs(self, backend):
        X, y = _data(seed=1)
        ref = self._machine(backend)
        ref.fit(X, y, epochs=2, shuffle=False, track_metrics=False)
        inc = self._machine(backend)
        inc.partial_fit(X, y)
        inc.partial_fit(X, y)
        assert np.array_equal(ref.team.state, inc.team.state)

    def test_rng_position_identical_after_replay(self, backend):
        # Not just the trained state: the *next* draw must agree, so
        # training can keep alternating fit/partial_fit indefinitely.
        X, y = _data(seed=2)
        a = self._machine(backend)
        a.fit(X, y, epochs=1, shuffle=False, track_metrics=False)
        b = self._machine(backend)
        b.partial_fit(X[:30], y[:30])
        b.partial_fit(X[30:], y[30:])
        assert np.array_equal(a.rng.random((16,)), b.rng.random((16,)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_coalesced_bit_identity(backend):
    X, y = _data(seed=3)
    ref = CoalescedTsetlinMachine(3, 16, n_clauses=9, T=5, seed=11,
                                  backend=backend)
    ref.fit(X, y, epochs=1, shuffle=False)
    inc = CoalescedTsetlinMachine(3, 16, n_clauses=9, T=5, seed=11,
                                  backend=backend)
    for cx, cy in _chunks(X, y, (20, 20)):
        inc.partial_fit(cx, cy)
    assert np.array_equal(ref.team.state, inc.team.state)
    assert np.array_equal(ref.weights, inc.weights)


@pytest.mark.parametrize("backend", BACKENDS)
def test_convolutional_bit_identity(backend):
    X, y = _image_data()
    kw = dict(patch_shape=(3, 3), n_clauses=6, T=4, seed=3, backend=backend)
    ref = ConvolutionalTsetlinMachine(2, (6, 6), **kw)
    ref.fit(X, y, epochs=1, shuffle=False)
    inc = ConvolutionalTsetlinMachine(2, (6, 6), **kw)
    for cx, cy in _chunks(X, y, (13, 13)):
        inc.partial_fit(cx, cy)
    assert np.array_equal(ref.team.state, inc.team.state)


def test_cross_backend_partial_fit_identity():
    # reference and vectorized agree with *each other* chunk by chunk.
    X, y = _data(seed=5)
    machines = [TsetlinMachine(3, 16, n_clauses=8, T=5, seed=13, backend=b)
                for b in BACKENDS]
    for cx, cy in _chunks(X, y, (9, 21, 14)):
        for m in machines:
            m.partial_fit(cx, cy)
    assert np.array_equal(machines[0].team.state, machines[1].team.state)


def test_partial_fit_validation_and_empty_chunk():
    tm = TsetlinMachine(3, 16, n_clauses=8, T=5, seed=1)
    X, y = _data()
    before = tm.team.state.copy()
    tm.partial_fit(X[:0], y[:0])  # empty chunk is a no-op
    assert np.array_equal(tm.team.state, before)
    with pytest.raises(ValueError, match="same length"):
        tm.partial_fit(X[:5], y[:4])
    with pytest.raises(ValueError, match="labels out of range"):
        tm.partial_fit(X[:5], np.full(5, 99))
    with pytest.raises(ValueError, match="boolean features"):
        tm.partial_fit(np.zeros((4, 17), dtype=np.uint8), np.zeros(4, int))
