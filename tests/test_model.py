"""Tests for the TMModel artifact and its reference semantics."""

import numpy as np
import pytest

from repro.model import TMModel
from _fixtures import random_model


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TMModel(include=np.zeros((2, 4), dtype=bool), n_features=2)

    def test_literal_width_validation(self):
        with pytest.raises(ValueError):
            TMModel(include=np.zeros((2, 4, 7), dtype=bool), n_features=3)

    def test_weights_shape_validation(self):
        inc = np.zeros((2, 4, 6), dtype=bool)
        with pytest.raises(ValueError):
            TMModel(include=inc, n_features=3, weights=np.zeros((2, 3)))

    def test_include_readonly(self):
        m = random_model()
        with pytest.raises(ValueError):
            m.include[0, 0, 0] = True


class TestSemantics:
    def test_clause_outputs_manual(self):
        # one class, one clause: x0 & ~x1  over 2 features
        inc = np.zeros((1, 2, 4), dtype=bool)
        inc[0, 0, 0] = True   # x0
        inc[0, 0, 3] = True   # ~x1
        m = TMModel(include=inc, n_features=2)
        X = np.array([[1, 0], [1, 1], [0, 0]], dtype=np.uint8)
        out = m.clause_outputs(X)
        assert out[:, 0, 0].tolist() == [1, 0, 0]
        # clause 1 is empty -> always 0
        assert out[:, 0, 1].tolist() == [0, 0, 0]

    def test_class_sums_polarity(self):
        inc = np.zeros((1, 4, 4), dtype=bool)
        inc[0, 0, 0] = True  # +1 clause: x0
        inc[0, 1, 0] = True  # -1 clause: x0
        inc[0, 2, 1] = True  # +1 clause: x1
        # clause 3 empty
        m = TMModel(include=inc, n_features=2)
        sums = m.class_sums(np.array([[1, 1], [1, 0]], dtype=np.uint8))
        assert sums[0, 0] == 1   # +1 -1 +1 + 0
        assert sums[1, 0] == 0   # +1 -1 +0

    def test_weighted_class_sums(self):
        inc = np.zeros((2, 2, 4), dtype=bool)
        inc[:, :, 0] = True  # every clause is just x0
        w = np.array([[3, -1], [2, 2]], dtype=np.int32)
        m = TMModel(include=inc, n_features=2, weights=w)
        sums = m.class_sums(np.array([[1, 0]], dtype=np.uint8))
        assert sums.tolist() == [[2, 4]]

    def test_predict_tie_breaks_low_index(self):
        inc = np.zeros((2, 2, 4), dtype=bool)
        m = TMModel(include=inc, n_features=2)
        pred = m.predict(np.array([[1, 1]], dtype=np.uint8))
        assert pred[0] == 0

    def test_contradictory_clause_never_fires(self):
        inc = np.zeros((1, 2, 4), dtype=bool)
        inc[0, 0, 0] = True  # x0
        inc[0, 0, 2] = True  # ~x0
        m = TMModel(include=inc, n_features=2)
        X = np.array([[0, 0], [1, 0]], dtype=np.uint8)
        assert (m.clause_outputs(X)[:, 0, 0] == 0).all()

    def test_feature_count_checked(self):
        m = random_model(n_features=10)
        with pytest.raises(ValueError):
            m.predict(np.zeros((2, 11), dtype=np.uint8))


class TestQueries:
    def test_density_and_counts(self):
        m = random_model(density=0.1, seed=5)
        assert 0.0 < m.density() < 0.2
        assert m.includes_per_clause().shape == (m.n_classes, m.n_clauses)
        assert m.literal_usage().shape == (m.n_literals,)

    def test_empty_clause_mask(self):
        inc = np.zeros((1, 3, 4), dtype=bool)
        inc[0, 1, 0] = True
        m = TMModel(include=inc, n_features=2)
        assert m.empty_clause_mask()[0].tolist() == [True, False, True]

    def test_vote_weights_polarity_default(self):
        m = random_model(n_clauses=4)
        assert m.vote_weights()[0].tolist() == [1, -1, 1, -1]


class TestSerialization:
    def test_roundtrip_dict(self):
        m = random_model(seed=8)
        clone = TMModel.from_dict(m.to_dict())
        assert clone == m

    def test_roundtrip_file(self, tmp_path):
        m = random_model(seed=9, name="disk")
        path = tmp_path / "model.json"
        m.save(path)
        clone = TMModel.load(path)
        assert clone == m
        assert clone.name == "disk"

    def test_weighted_roundtrip(self):
        inc = np.zeros((2, 2, 4), dtype=bool)
        inc[0, 0, 1] = True
        w = np.array([[1, 2], [-3, 4]], dtype=np.int32)
        m = TMModel(include=inc, n_features=2, weights=w)
        clone = TMModel.from_dict(m.to_dict())
        assert clone == m
        assert np.array_equal(clone.weights, w)

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            TMModel.from_dict({"format": "something-else"})

    def test_equality_vs_other_types(self):
        m = random_model()
        assert (m == 42) is False or (m == 42) is NotImplemented or not (m == 42)
