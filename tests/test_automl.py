"""Tests for the successive-halving AutoML scheduler (repro.sweep.scheduler).

The properties pinned here are the scheduler's contract:

* rung budget ladders and Pareto-layered ranking are deterministic;
* warm continuation from a rung snapshot is bit-identical to a cold
  replay from epoch 0 (what makes cached rung records trustworthy);
* the audit report is identical across worker counts and across
  cache-resumed re-runs;
* the search -> deploy handoff promotes the winner onto a replica fleet
  with zero dropped requests.
"""

import io
import json
import os

import numpy as np
import pytest

from repro.flow import FlowConfig
from repro.flow.cli import main as cli_main
from repro.sweep import (
    AUTOML_OBJECTIVES,
    SweepSpec,
    deploy_winner,
    rank_candidates,
    run_automl,
    rung_budgets,
    train_candidate,
)
from repro.sweep.scheduler import _snapshot


def tiny_base(**overrides):
    base = dict(
        dataset="kws6", n_train=100, n_test=50, clauses_per_class=8,
        epochs=4, T=8, s=4.0,
    )
    base.update(overrides)
    return FlowConfig(**base)


def tiny_spec():
    return SweepSpec.from_grid(tiny_base(), T=[8, 12], s=[3.0, 4.0])


# ----------------------------------------------------------------------
class TestRungBudgets:
    def test_ladder_multiplies_by_eta_and_clips(self):
        assert rung_budgets(1, 9, 3) == [1, 3, 9]
        assert rung_budgets(1, 8, 2) == [1, 2, 4, 8]
        assert rung_budgets(2, 9, 3) == [2, 6, 9]
        assert rung_budgets(5, 5, 2) == [5]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            rung_budgets(0, 4, 2)
        with pytest.raises(ValueError):
            rung_budgets(4, 2, 2)
        with pytest.raises(ValueError):
            rung_budgets(1, 4, 1)


# ----------------------------------------------------------------------
def record(key, accuracy=None, latency=None, luts=None, error=None):
    return {
        "key": key,
        "config": {},
        "error": error,
        "metrics": {"accuracy": accuracy, "latency_us": latency, "luts": luts},
    }


class TestRankCandidates:
    def test_front_zero_first_then_dominated_layers(self):
        best = record("a", accuracy=0.9, latency=2.0, luts=100)
        small = record("b", accuracy=0.5, latency=1.0, luts=50)
        dominated = record("c", accuracy=0.4, latency=2.0, luts=120)
        ranked = rank_candidates([dominated, small, best])
        # best and small are mutually non-dominated (front 0, accuracy
        # breaks the tie); dominated sits in the next layer.
        assert [r["key"] for r in ranked] == ["a", "b", "c"]

    def test_incomplete_metrics_rank_after_complete(self):
        complete = record("a", accuracy=0.2, latency=9.0, luts=900)
        software_only = record("b", accuracy=0.95)  # no hardware metrics
        ranked = rank_candidates([software_only, complete])
        assert [r["key"] for r in ranked] == ["a", "b"]

    def test_errors_rank_last_sorted_by_key(self):
        ok = record("z", accuracy=0.1, latency=1.0, luts=10)
        bad2 = record("b", error="ValueError: boom")
        bad1 = record("a", error="ValueError: boom")
        ranked = rank_candidates([bad2, ok, bad1])
        assert [r["key"] for r in ranked] == ["z", "a", "b"]

    def test_deterministic_under_input_permutation(self):
        records = [
            record("a", accuracy=0.9, latency=2.0, luts=100),
            record("b", accuracy=0.9, latency=2.0, luts=90),
            record("c", accuracy=0.7, latency=1.0, luts=50),
            record("d", accuracy=0.6, latency=3.0, luts=200),
        ]
        ranked = rank_candidates(records)
        ranked_rev = rank_candidates(list(reversed(records)))
        assert [r["key"] for r in ranked] == [r["key"] for r in ranked_rev]


# ----------------------------------------------------------------------
class TestWarmColdEquivalence:
    def test_warm_resume_is_bit_identical_to_cold_replay(self):
        config = tiny_base()
        _, machine2 = train_candidate(config, 2)
        snap = _snapshot(machine2)
        assert snap is not None
        flow_warm, warm = train_candidate(config, 4, state=snap, start_epoch=2)
        flow_cold, cold = train_candidate(config, 4)
        assert np.array_equal(warm.team.state, cold.team.state)
        assert flow_warm.result.accuracy == flow_cold.result.accuracy

    def test_restore_refreshes_inference_caches(self):
        # A restored machine must evaluate like the original immediately
        # (inference reads the backend's packed caches, not team.state).
        config = tiny_base()
        flow, machine = train_candidate(config, 3)
        snap = _snapshot(machine)
        flow_restored, _ = train_candidate(config, 3, state=snap, start_epoch=3)
        assert flow_restored.result.accuracy == flow.result.accuracy


# ----------------------------------------------------------------------
class TestSchedulerDeterminism:
    def test_report_identical_across_jobs(self):
        spec = tiny_spec()
        r1 = run_automl(spec, eta=2, min_budget=1, max_budget=4, jobs=1)
        r4 = run_automl(spec, eta=2, min_budget=1, max_budget=4, jobs=4)
        assert r1.report() == r4.report()
        assert r1.winner["key"] == r4.winner["key"]

    def test_cache_resume_mid_rung_is_bit_identical(self, tmp_path):
        spec = tiny_spec()
        cache_a = tmp_path / "a"
        full = run_automl(
            spec, eta=2, min_budget=1, max_budget=4, jobs=1,
            cache_dir=str(cache_a),
        )
        # Simulate a crash mid-run: drop every other cached rung record,
        # then resume into the surviving cache.
        files = sorted(p for p in cache_a.rglob("*") if p.is_file())
        assert files, "scheduler must populate the rung cache"
        for path in files[::2]:
            os.remove(path)
        resumed = run_automl(
            spec, eta=2, min_budget=1, max_budget=4, jobs=1,
            cache_dir=str(cache_a),
        )
        assert resumed.report() == full.report()
        assert resumed.to_json() == full.to_json()

    def test_budget_accounting(self):
        spec = tiny_spec()
        result = run_automl(spec, eta=2, min_budget=1, max_budget=4, jobs=1)
        assert result.budgets == [1, 2, 4]
        # 4 candidates x 1 epoch, 2 survivors x 1 epoch, 1 survivor x 2.
        assert result.spent_epochs == 4 + 2 + 2
        assert result.grid_epochs == 4 * 4
        assert result.budget_fraction == pytest.approx(0.5)
        assert result.spent_epochs == sum(
            rung["trained_epochs"] for rung in result.rungs
        )

    def test_eliminations_cover_non_survivors(self):
        result = run_automl(tiny_spec(), eta=2, min_budget=1, max_budget=4)
        eliminated = {e["key"] for e in result.eliminations}
        assert result.winner["key"] not in eliminated
        all_keys = {c["key"] for c in result.rungs[0]["candidates"]}
        assert eliminated == all_keys - {result.winner["key"]}

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            run_automl(SweepSpec(points=[]))


# ----------------------------------------------------------------------
class TestDeployWinner:
    def test_winner_promoted_to_fleet_with_zero_drops(self):
        result = run_automl(tiny_spec(), eta=2, min_budget=1, max_budget=4)
        report = deploy_winner(result, replicas=2, mode="inline", requests=64)
        assert report["promoted"] is True
        assert report["shed"] == 0
        assert report["fleet_versions"] == [2, 2]
        assert report["new_version"] == 2
        # The roll touched every replica exactly once.
        assert [e["replica"] for e in report["roll"]] == [0, 1]
        assert all(e["version"] == 2 for e in report["roll"])
        assert report["challenger_accuracy"] >= report["champion_accuracy"]
        # The deploy record embeds into the deterministic audit report.
        result.deploy = report
        assert json.loads(result.to_json())["deploy"]["promoted"] is True

    def test_no_winner_raises(self):
        result = run_automl(tiny_spec(), eta=2, min_budget=1, max_budget=4)
        result.winner = None
        with pytest.raises(ValueError):
            deploy_winner(result)


# ----------------------------------------------------------------------
class TestAutomlCli:
    ARGS = [
        "automl", "--dataset", "kws6", "--clauses", "8", "--T", "8,12",
        "--s", "3,4", "--train", "100", "--test", "50", "--epochs", "4",
        "--eta", "2", "--min-budget", "1", "--no-cache",
    ]

    def test_json_report_on_stdout(self):
        out = io.StringIO()
        code = cli_main(self.ARGS + ["--json"], out=out)
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["schema"] == "repro.sweep.automl/1"
        assert report["winner"] is not None
        assert report["budget"]["fraction"] <= 0.5
        assert report["deploy"] is None

    def test_deploy_and_report_file(self, tmp_path):
        report_path = tmp_path / "automl.json"
        out = io.StringIO()
        code = cli_main(
            self.ARGS + ["--deploy", "--replicas", "2",
                         "--deploy-requests", "64",
                         "--report", str(report_path)],
            out=out,
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["deploy"]["promoted"] is True
        assert report["deploy"]["shed"] == 0

    def test_bad_arguments_exit_2(self):
        out = io.StringIO()
        assert cli_main(self.ARGS + ["--eta", "1"], out=out) == 2
        assert cli_main(self.ARGS + ["--jobs", "0"], out=out) == 2
        assert cli_main(self.ARGS + ["--min-budget", "0"], out=out) == 2
        assert cli_main(
            self.ARGS + ["--min-budget", "9", "--max-budget", "2"], out=out
        ) == 2

    def test_resume_uses_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        args = self.ARGS[:-1] + [  # drop --no-cache
            "--cache-dir", str(cache_dir), "--resume", "--json",
        ]
        first = io.StringIO()
        assert cli_main(args, out=first) == 0
        second = io.StringIO()
        assert cli_main(args, out=second) == 0
        assert json.loads(first.getvalue()) == json.loads(second.getvalue())
        assert any(p.is_file() for p in cache_dir.rglob("*"))
