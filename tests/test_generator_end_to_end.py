"""End-to-end tests of the design generator: equivalence, timing, pipelining."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.simulator import AcceleratorSimulator, build_testbench
from _fixtures import random_model


def hw_sw_match(model, config, n_vectors=24, seed=0):
    design = generate_accelerator(model, config)
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n_vectors, model.n_features)).astype(np.uint8)
    sim = AcceleratorSimulator(design, batch=n_vectors)
    report = sim.run_batch(X)
    return design, bool(np.array_equal(report.predictions, model.predict(X))), report


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_models(self, seed):
        model = random_model(n_classes=3, n_clauses=6, n_features=20,
                             density=0.2, seed=seed)
        _, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8))
        assert ok

    @pytest.mark.parametrize("bus_width", [4, 8, 16, 32, 64])
    def test_bus_widths(self, bus_width):
        model = random_model(n_classes=2, n_clauses=4, n_features=30,
                             density=0.15, seed=1)
        design, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=bus_width))
        assert ok
        expected_packets = -(-30 // bus_width)
        assert design.n_packets == expected_packets

    @pytest.mark.parametrize("ps,pa", [(True, True), (True, False),
                                       (False, True), (False, False)])
    def test_pipeline_configurations(self, ps, pa):
        model = random_model(seed=7)
        config = AcceleratorConfig(bus_width=8, pipeline_class_sum=ps,
                                   pipeline_argmax=pa)
        design, ok, report = hw_sw_match(model, config)
        assert ok
        assert report.first_result_cycle == design.latency.first_result_cycle

    def test_dont_touch_equivalent(self):
        model = random_model(seed=3)
        _, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8,
                                                        share_logic=False))
        assert ok

    def test_no_pruning_equivalent(self):
        model = random_model(seed=4)
        _, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8,
                                                        prune_passthrough=False))
        assert ok

    def test_model_with_empty_clauses(self):
        model = random_model(density=0.03, seed=5)  # many empty clauses
        assert model.empty_clause_mask().any()
        _, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8))
        assert ok

    def test_two_class_single_packet(self):
        model = random_model(n_classes=2, n_clauses=4, n_features=6,
                             density=0.3, seed=6)
        design, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8))
        assert ok
        assert design.n_packets == 1

    def test_weighted_coalesced_model(self):
        from repro.tsetlin import CoalescedTsetlinMachine

        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(80, 12)).astype(np.uint8)
        y = (X[:, 0] + X[:, 1]).astype(np.int64) % 2
        cotm = CoalescedTsetlinMachine(2, 12, n_clauses=6, T=6, seed=1)
        cotm.fit(X, y, epochs=3)
        model = cotm.export_model()
        _, ok, _ = hw_sw_match(model, AcceleratorConfig(bus_width=8))
        assert ok


class TestStreamTiming:
    def test_initiation_interval_matches_packets(self):
        model = random_model(n_features=20, seed=2)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=4))
        sim = AcceleratorSimulator(design, batch=1)
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(6, 20)).astype(np.uint8)
        report = sim.run_stream(X)
        assert len(report.predictions) == 6
        assert report.initiation_interval == design.latency.initiation_interval
        assert np.array_equal(report.predictions, model.predict(X))

    def test_gapped_stream_still_correct(self):
        model = random_model(n_features=16, seed=8)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=8))
        sim = AcceleratorSimulator(design, batch=1)
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(4, 16)).astype(np.uint8)
        report = sim.run_stream(X, gap=2)
        assert np.array_equal(report.predictions, model.predict(X))
        # With gaps the initiation interval stretches by the gap factor.
        assert report.initiation_interval > design.latency.initiation_interval

    def test_first_latency_formula(self):
        """Latency = packets + stages, verified for all pipeline combos."""
        model = random_model(n_features=24, seed=9)
        for ps in (False, True):
            for pa in (False, True):
                config = AcceleratorConfig(bus_width=8, pipeline_class_sum=ps,
                                           pipeline_argmax=pa)
                design = generate_accelerator(model, config)
                sim = AcceleratorSimulator(design, batch=1)
                X = np.zeros((1, 24), dtype=np.uint8)
                report = sim.run_stream(X)
                assert report.first_result_cycle == design.latency.first_result_cycle


class TestTestbench:
    def test_testbench_passes_on_good_design(self, trained_model):
        design = generate_accelerator(trained_model, AcceleratorConfig())
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(5, trained_model.n_features)).astype(np.uint8)
        report = build_testbench(design, X).run()
        assert report.passed, report.summary()

    def test_verilog_testbench_text(self, tiny_model):
        from repro.simulator import emit_verilog_testbench

        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        X = np.zeros((2, tiny_model.n_features), dtype=np.uint8)
        tb = emit_verilog_testbench(design, X)
        assert "module matador_accel_tb;" in tb
        assert "$finish" in tb
        assert tb.count("@(posedge clk)") >= design.n_packets


class TestDesignMetadata:
    def test_structure_report_blocks(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        report = design.structure_report()
        assert any(b.startswith("hcb") for b in report)
        assert "class_sum" in report
        assert "argmax" in report
        assert "ctrl" in report

    def test_summary_text(self, tiny_model):
        design = generate_accelerator(tiny_model, AcceleratorConfig(bus_width=8))
        text = design.summary()
        assert "packets" in text
        assert "II=" in text
