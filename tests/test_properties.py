"""Property-based tests over randomly generated netlists and designs.

A hypothesis strategy builds arbitrary well-formed sequential netlists;
three toolchain invariants are then checked on every sample:

1. emit -> parse round-trips preserve behavior;
2. the optimize pass (share + strip-dead) preserves behavior;
3. greedy LUT mapping covers every live gate with supports within k.

Plus stall-correctness: arbitrary stall/valid patterns on the stream
interface never corrupt an accelerator's predictions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.accelerator.packetizer import packetize
from repro.flow.verify import netlists_equivalent
from repro.rtl import Netlist, emit_verilog, optimize, parse_verilog
from repro.rtl.netlist import GATE_KINDS
from repro.simulator.core import CompiledNetlist
from repro.synthesis import map_greedy
from _fixtures import random_model


@st.composite
def netlists(draw, max_inputs=5, max_ops=25):
    """Random well-formed netlist with at least one output."""
    n_inputs = draw(st.integers(1, max_inputs))
    nl = Netlist("prop", share=draw(st.booleans()))
    nets = [nl.add_input(f"i{k}") for k in range(n_inputs)]
    nets.append(nl.const(0))
    nets.append(nl.const(1))
    n_ops = draw(st.integers(1, max_ops))
    for _ in range(n_ops):
        op = draw(st.sampled_from(["and", "or", "xor", "not", "mux", "dff"]))
        a = nets[draw(st.integers(0, len(nets) - 1))]
        b = nets[draw(st.integers(0, len(nets) - 1))]
        c = nets[draw(st.integers(0, len(nets) - 1))]
        if op == "and":
            nets.append(nl.g_and(a, b))
        elif op == "or":
            nets.append(nl.g_or(a, b))
        elif op == "xor":
            nets.append(nl.g_xor(a, b))
        elif op == "not":
            nets.append(nl.g_not(a))
        elif op == "mux":
            nets.append(nl.g_mux(a, b, c))
        else:
            en = nets[draw(st.integers(0, len(nets) - 1))]
            init = draw(st.integers(0, 1))
            nets.append(nl.dff(a, en=en, init=init))
    n_outputs = draw(st.integers(1, 3))
    for k in range(n_outputs):
        nl.set_output(f"o{k}", nets[draw(st.integers(0, len(nets) - 1))])
    return nl


@settings(max_examples=40, deadline=None)
@given(nl=netlists())
def test_verilog_roundtrip_property(nl):
    reparsed = parse_verilog(emit_verilog(nl))
    assert netlists_equivalent(nl, reparsed, n_cycles=12, batch=4, seed=3)


@settings(max_examples=40, deadline=None)
@given(nl=netlists())
def test_optimize_preserves_function_property(nl):
    cleaned, report = optimize(nl)
    assert netlists_equivalent(nl, cleaned, n_cycles=12, batch=4, seed=5)
    assert report.gates_after <= report.gates_before


@settings(max_examples=40, deadline=None)
@given(nl=netlists(), k=st.integers(3, 6))
def test_lut_mapping_covers_live_gates_property(nl, k):
    mapping = map_greedy(nl, k=k)
    for lut in mapping.luts:
        assert lut.n_inputs <= k
    # Every gate feeding an output or register must be inside some cone:
    # either a LUT root itself or absorbed (fanout-1 gates only).
    roots = {lut.root for lut in mapping.luts}
    fanout = nl.fanout_counts()
    for nid, node in enumerate(nl.nodes):
        if node.kind not in GATE_KINDS or node.kind == "not":
            continue
        if fanout[nid] > 1 or any(
            nid in n.fanins for n in nl.nodes if n.kind == "dff"
        ) or nid in nl.outputs.values():
            # Multi-fanout and boundary gates are always roots.
            assert nid in roots


class TestStallCorrectness:
    """The paper's 'stall' control: backpressure must never corrupt data."""

    def run_with_stalls(self, design, X, stall_pattern, seed=0):
        packets = packetize(X, design.schedule).reshape(-1)
        sim = CompiledNetlist(design.netlist, batch=1)
        rng = np.random.default_rng(seed)
        predictions = []
        idx = 0
        cycle = 0
        limit = len(packets) * 6 + 40
        while idx < len(packets) or len(predictions) < len(X):
            stall = stall_pattern(cycle, rng)
            if idx < len(packets):
                sim.set_bus("s_data", np.array([packets[idx]], dtype=np.uint64))
                sim.set_input("s_valid", 1)
                valid = 1
            else:
                sim.set_input("s_valid", 0)
                valid = 0
            sim.set_input("rst", 0)
            sim.set_input("stall", stall)
            sim.settle()
            ready = int(sim.output("s_ready")[0])
            if valid and ready:
                idx += 1
            if int(sim.output("result_valid")[0]):
                predictions.append(int(sim.output_bus("result")[0]))
            sim.clock()
            cycle += 1
            if cycle > limit:
                break
        return np.asarray(predictions[: len(X)])

    def test_random_stalls_preserve_predictions(self):
        model = random_model(seed=31, density=0.18)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=8))
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(5, model.n_features)).astype(np.uint8)
        got = self.run_with_stalls(
            design, X, lambda cycle, r: int(r.random() < 0.4), seed=2
        )
        assert np.array_equal(got, model.predict(X))

    def test_long_stall_burst_preserves_predictions(self):
        model = random_model(seed=32, density=0.18)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=8))
        rng = np.random.default_rng(3)
        X = rng.integers(0, 2, size=(3, model.n_features)).astype(np.uint8)
        got = self.run_with_stalls(
            design, X, lambda cycle, r: 1 if 4 <= cycle < 14 else 0
        )
        assert np.array_equal(got, model.predict(X))

    def test_valid_gaps_preserve_predictions(self):
        """Host-side gaps (s_valid low) instead of fabric stalls."""
        from repro.simulator import AcceleratorSimulator

        model = random_model(seed=33, density=0.18)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=8))
        rng = np.random.default_rng(4)
        X = rng.integers(0, 2, size=(4, model.n_features)).astype(np.uint8)
        sim = AcceleratorSimulator(design, batch=1)
        report = sim.run_stream(X, gap=3)
        assert np.array_equal(report.predictions, model.predict(X))
