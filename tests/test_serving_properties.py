"""Property-based differential tests for the serving engine.

For hypothesis-drawn machine shapes and automaton states, the packed
serving engine must agree exactly with the machine's own inference
(``InferenceEngine.predict == machine.predict``) for all three machine
kinds, and — for the hardware-supported kinds (flat and coalesced; the
accelerator path does not cover convolutional machines, as in the paper)
— with the cycle-accurate simulation of the generated accelerator:
identical predictions and bit-identical winning class sums.

Machine states are drawn as arbitrary automaton matrices (not trained),
so the properties cover degenerate corners training rarely produces:
all-empty clause banks, contradictory literals, single-clause pools.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.serving import snapshot_engine
from repro.simulator import AcceleratorSimulator
from repro.tsetlin import (
    CoalescedTsetlinMachine,
    ConvolutionalTsetlinMachine,
    TsetlinMachine,
)

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
_fast = settings(max_examples=25, deadline=None)


def _randomize(machine, seed):
    """Arbitrary automaton states in [1, 2N] + resync of backend caches."""
    rng = np.random.default_rng(seed)
    team = machine.team
    team.state[:] = rng.integers(1, 2 * team.n_states + 1, team.state.shape)
    machine.backend.sync()
    return rng


def _inputs(rng, n, f):
    return (rng.random((n, f)) < 0.5).astype(np.uint8)


def _assert_sim_agrees(model, engine, X):
    """Predictions + winning class sums: engine == compiled netlist."""
    design = generate_accelerator(model, AcceleratorConfig(name="prop"))
    report = AcceleratorSimulator(design, batch=len(X)).run_batch(X)
    preds, sums = engine.predict_with_sums(X)
    assert np.array_equal(report.predictions, preds)
    assert np.array_equal(
        report.class_sums_of_winner, sums[np.arange(len(X)), preds]
    )


# ----------------------------------------------------------------------
@given(
    n_classes=st.integers(2, 3),
    n_clauses=st.sampled_from([2, 4, 6]),
    n_features=st.integers(3, 10),
    n_samples=st.integers(1, 6),
    seed=st.integers(0, 2**32 - 1),
)
@_slow
def test_flat_engine_machine_simulator_agree(n_classes, n_clauses, n_features,
                                             n_samples, seed):
    tm = TsetlinMachine(n_classes, n_features, n_clauses=n_clauses, T=4,
                        seed=0, backend="vectorized")
    rng = _randomize(tm, seed)
    X = _inputs(rng, n_samples, n_features)
    engine = snapshot_engine(tm)
    assert np.array_equal(engine.predict(X), tm.predict(X))
    assert np.array_equal(engine.class_sums(X), tm.class_sums(X))
    _assert_sim_agrees(tm.export_model("prop"), engine, X)


@given(
    n_classes=st.integers(2, 3),
    n_clauses=st.integers(1, 6),
    n_features=st.integers(3, 10),
    n_samples=st.integers(1, 6),
    seed=st.integers(0, 2**32 - 1),
)
@_slow
def test_coalesced_engine_machine_simulator_agree(n_classes, n_clauses,
                                                  n_features, n_samples, seed):
    co = CoalescedTsetlinMachine(n_classes, n_features, n_clauses=n_clauses,
                                 T=4, seed=0, backend="vectorized")
    rng = _randomize(co, seed)
    # Arbitrary signed weights too — the served quantity is the weighted sum.
    co.weights[:] = rng.integers(-3, 4, co.weights.shape)
    X = _inputs(rng, n_samples, n_features)
    engine = snapshot_engine(co)
    assert np.array_equal(engine.predict(X), co.predict(X))
    assert np.array_equal(engine.class_sums(X), co.class_sums(X))
    _assert_sim_agrees(co.export_model("prop"), engine, X)


@given(
    n_classes=st.integers(2, 3),
    n_clauses=st.sampled_from([2, 4]),
    image=st.sampled_from([(4, 4), (5, 4), (6, 6)]),
    patch=st.sampled_from([(2, 2), (3, 3)]),
    n_samples=st.integers(1, 5),
    seed=st.integers(0, 2**32 - 1),
)
@_fast
def test_convolutional_engine_machine_agree(n_classes, n_clauses, image,
                                            patch, n_samples, seed):
    ctm = ConvolutionalTsetlinMachine(n_classes, image, patch_shape=patch,
                                      n_clauses=n_clauses, T=4, seed=0,
                                      backend="vectorized")
    rng = _randomize(ctm, seed)
    X = _inputs(rng, n_samples, image[0] * image[1])
    engine = snapshot_engine(ctm)
    assert np.array_equal(engine.class_sums(X), ctm.class_sums(X))
    assert np.array_equal(engine.predict(X), ctm.predict(X))


@given(
    n_classes=st.integers(2, 4),
    n_clauses=st.sampled_from([2, 4, 8]),
    n_features=st.integers(3, 12),
    n_samples=st.integers(1, 8),
    seed=st.integers(0, 2**32 - 1),
)
@_fast
def test_engine_matches_reference_backend_machine(n_classes, n_clauses,
                                                  n_features, n_samples, seed):
    """Snapshot equality is backend-independent (reference machine too)."""
    tm = TsetlinMachine(n_classes, n_features, n_clauses=n_clauses, T=4,
                        seed=0, backend="reference")
    rng = _randomize(tm, seed)
    X = _inputs(rng, n_samples, n_features)
    engine = snapshot_engine(tm)
    assert np.array_equal(engine.predict(X), tm.predict(X))
    assert np.array_equal(engine.class_sums(X), tm.class_sums(X))


@given(
    n_classes=st.integers(2, 4),
    n_clauses=st.sampled_from([1, 2, 4, 8]),
    n_features=st.integers(3, 12),
    n_samples=st.integers(1, 8),
    density=st.sampled_from([0.0, 0.05, 0.3, 1.0]),
    seed=st.integers(0, 2**32 - 1),
)
@_fast
def test_active_clause_pruning_round_trips_exactly(n_classes, n_clauses,
                                                   n_features, n_samples,
                                                   density, seed):
    """Prune + re-densify is a layout change, never a semantic one.

    For arbitrary include densities (including all-empty and all-full
    banks) the compact :class:`~repro.model.sparsity.ActiveClauseIndex`
    must (a) produce bit-identical ``class_sums`` through the engine,
    (b) densify back to an ``array_equal`` include matrix, and
    (c) reconstruct a model whose serialized JSON bytes equal the
    source's — the promotion/serialization artifact is untouched by the
    hot-loop compaction.
    """
    import json

    from repro.model import TMModel
    from repro.model.sparsity import ActiveClauseIndex
    from repro.serving import InferenceEngine

    rng = np.random.default_rng(seed)
    include = rng.random((n_classes, n_clauses, 2 * n_features)) < density
    weights = rng.integers(-3, 4, (n_classes, n_clauses))
    model = TMModel(include=include, n_features=n_features, name="prune",
                    weights=weights,
                    hyperparameters={"s": 5.0, "T": 4})
    X = _inputs(rng, n_samples, n_features)

    engine = InferenceEngine.from_model(model)
    dense_sums = (
        np.einsum(
            "ck,nck->nc",
            model.vote_weights(),
            np.stack([_dense_clause_outputs(model, x) for x in X]),
            dtype=np.int32,
        )
        if len(X)
        else np.zeros((0, n_classes), dtype=np.int32)
    )
    assert np.array_equal(engine.class_sums(X), dense_sums)

    index = ActiveClauseIndex.from_model(model)
    assert np.array_equal(index.densify(), model.include)
    rebuilt = index.densify_model()
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == \
        json.dumps(model.to_dict(), sort_keys=True)


def _dense_clause_outputs(model, x):
    """Naive per-clause evaluation (empty clauses pruned), one sample."""
    literals = np.concatenate([x, 1 - x]).astype(bool)
    out = np.zeros((model.n_classes, model.n_clauses), dtype=np.int32)
    for c in range(model.n_classes):
        for k in range(model.n_clauses):
            inc = model.include[c, k]
            if not inc.any():
                continue  # pruned: an empty clause never fires
            out[c, k] = bool(np.all(literals[inc]))
    return out
