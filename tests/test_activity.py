"""Tests for simulation-driven switching-activity analysis."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.accelerator.packetizer import packetize
from repro.rtl import Netlist
from repro.simulator import CompiledNetlist
from repro.synthesis import (
    implement_design,
    measure_activity,
    power_from_activity,
)
from _fixtures import random_model


def toggler_netlist():
    """A register that flips every cycle plus a frozen constant branch."""
    nl = Netlist("tog")
    r = nl.dff(nl.const(0), name="r")
    nl.nodes[r].fanins = (nl.g_not(r), nl.const(1), nl.const(0))
    frozen_in = nl.add_input("idle")
    nl.set_output("q", r)
    nl.set_output("f", nl.g_and(frozen_in, nl.dff(frozen_in, name="hold")))
    return nl, r


class TestMeasureActivity:
    def test_flip_flop_toggles_every_cycle(self):
        nl, r = toggler_netlist()
        sim = CompiledNetlist(nl, batch=1)

        def drive(s, cycle):
            s.set_input("idle", 0)

        report = measure_activity(sim, drive, n_cycles=20)
        assert report.register_toggle_rate > 0.4  # the toggler dominates

    def test_idle_design_has_zero_activity(self):
        nl = Netlist("idle")
        a = nl.add_input("a")
        nl.set_output("o", nl.dff(nl.g_not(a)))
        sim = CompiledNetlist(nl, batch=1)

        def drive(s, cycle):
            s.set_input("a", 1)  # constant stimulus after the first cycle

        # one warmup so the register settles, then measure.
        drive(sim, 0)
        sim.settle()
        sim.clock()
        report = measure_activity(sim, drive, n_cycles=10)
        assert report.mean_toggle_rate == 0.0

    def test_cycles_validated(self):
        nl, _ = toggler_netlist()
        sim = CompiledNetlist(nl, batch=1)
        with pytest.raises(ValueError):
            measure_activity(sim, lambda s, c: None, n_cycles=0)

    def test_busiest_nets_sorted(self):
        nl, r = toggler_netlist()
        sim = CompiledNetlist(nl, batch=1)
        report = measure_activity(sim, lambda s, c: s.set_input("idle", 0), 12)
        rates = [rate for _, rate in report.busiest_nets]
        assert rates == sorted(rates, reverse=True)


class TestAcceleratorActivity:
    def make(self):
        model = random_model(seed=17, density=0.15)
        design = generate_accelerator(model, AcceleratorConfig(bus_width=8))
        return model, design

    def drive_stream(self, design, X):
        packets = packetize(X, design.schedule).reshape(-1)

        def drive(sim, cycle):
            if cycle < len(packets):
                sim.set_bus("s_data", np.array([packets[cycle]], dtype=np.uint64))
                sim.set_input("s_valid", 1)
            else:
                sim.set_input("s_valid", 0)
            sim.set_input("rst", 0)
            sim.set_input("stall", 0)

        return drive, len(packets)

    def test_sparse_logic_toggles_rarely(self):
        """The paper's energy argument: TM logic activity is low."""
        model, design = self.make()
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(8, model.n_features)).astype(np.uint8)
        sim = CompiledNetlist(design.netlist, batch=1)
        drive, n_packets = self.drive_stream(design, X)
        report = measure_activity(sim, drive, n_cycles=n_packets + 6)
        assert 0.0 < report.mean_toggle_rate < 0.5
        assert report.cycles == n_packets + 6

    def test_per_block_toggle_keys(self):
        model, design = self.make()
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(4, model.n_features)).astype(np.uint8)
        sim = CompiledNetlist(design.netlist, batch=1)
        drive, n = self.drive_stream(design, X)
        report = measure_activity(sim, drive, n_cycles=n)
        assert any(b and b.startswith("hcb") for b in report.per_block_toggle)
        assert "ctrl" in report.per_block_toggle

    def test_power_from_activity_below_constant_model(self):
        """Measured sparse activity yields lower PL power than the default."""
        model, design = self.make()
        impl = implement_design(design)
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(8, model.n_features)).astype(np.uint8)
        sim = CompiledNetlist(design.netlist, batch=1)
        drive, n = self.drive_stream(design, X)
        activity = measure_activity(sim, drive, n_cycles=n + 4)
        measured = power_from_activity(impl.resources, impl.clock_mhz, activity)
        assert measured.total_w > 1.0  # PS floor still present
        # PL dynamic scales with the measured rate.
        from repro.synthesis import PowerModel, estimate_power

        constant = estimate_power(impl.resources, impl.clock_mhz, PowerModel())
        ratio = activity.mean_toggle_rate / PowerModel().toggle_rate
        assert measured.pl_dynamic_w == pytest.approx(
            constant.pl_dynamic_w * ratio, rel=0.3
        )
