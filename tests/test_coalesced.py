"""Tests for the Coalesced Tsetlin Machine extension."""

import numpy as np
import pytest

from repro.tsetlin import CoalescedTsetlinMachine


def data(n=160, n_features=12, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, n_features)).astype(np.uint8)
    y = ((X[:, 0] << 1) | X[:, 1]).astype(np.int64) % 3
    return X, y


class TestStructure:
    def test_shared_pool_shape(self):
        cotm = CoalescedTsetlinMachine(3, 10, n_clauses=12, seed=0)
        assert cotm.includes().shape == (12, 20)
        assert cotm.weights.shape == (3, 12)

    def test_initial_weights_balanced(self):
        cotm = CoalescedTsetlinMachine(2, 6, n_clauses=8, seed=0)
        assert cotm.weights.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoalescedTsetlinMachine(1, 4)
        with pytest.raises(ValueError):
            CoalescedTsetlinMachine(2, 4, n_clauses=0)


class TestLearning:
    def test_learns(self):
        X, y = data()
        cotm = CoalescedTsetlinMachine(3, 12, n_clauses=20, T=10, s=3.0, seed=1)
        cotm.fit(X, y, epochs=12)
        assert cotm.evaluate(X, y) > 0.8

    def test_class_sums_are_weighted(self):
        cotm = CoalescedTsetlinMachine(2, 6, n_clauses=4, seed=0)
        cotm.team.state[:] = 1  # all exclude -> all clauses empty -> output 0
        sums = cotm.class_sums(np.ones((3, 6), dtype=np.uint8))
        assert (sums == 0).all()

    def test_label_range_checked(self):
        cotm = CoalescedTsetlinMachine(2, 6, n_clauses=4, seed=0)
        with pytest.raises(ValueError):
            cotm.fit(np.zeros((3, 6), dtype=np.uint8), np.array([0, 1, 5]), epochs=1)


class TestExport:
    def test_export_replicates_pool_with_weights(self):
        X, y = data(n=80)
        cotm = CoalescedTsetlinMachine(3, 12, n_clauses=8, T=8, seed=2)
        cotm.fit(X, y, epochs=4)
        model = cotm.export_model("cotm")
        assert model.n_classes == 3
        assert model.n_clauses == 8
        assert model.weights is not None
        # Every class carries the same include rows (the shared pool).
        assert np.array_equal(model.include[0], model.include[1])
        assert np.array_equal(model.include[0], cotm.includes())

    def test_export_predictions_match(self):
        X, y = data(n=80)
        cotm = CoalescedTsetlinMachine(3, 12, n_clauses=8, T=8, seed=3)
        cotm.fit(X, y, epochs=4)
        model = cotm.export_model()
        assert np.array_equal(model.predict(X), cotm.predict(X))
