"""Quickstart: train a Tsetlin Machine and turn it into silicon.

The five-minute tour of the MATADOR flow:

1. load a booleanized dataset,
2. train a Tsetlin Machine,
3. generate the streaming accelerator (boolean-to-silicon),
4. implement it (LUT mapping, timing, power),
5. verify hardware == software cycle-accurately,
6. emit the Verilog.

Run:  python examples/quickstart.py
"""

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.data import load_dataset
from repro.flow import verify_design
from repro.rtl import emit_verilog
from repro.synthesis import implement_design
from repro.tsetlin import TsetlinMachine


def main():
    # 1. Data: a synthetic keyword-spotting set (377 boolean features, the
    #    same shape the paper's KWS6 evaluation uses).
    ds = load_dataset("kws6", n_train=400, n_test=200, seed=0)
    print(f"dataset: {ds.name}, {ds.n_features} features, {ds.n_classes} classes")

    # 2. Train.  The vectorized backend is bit-identical with the
    #    reference per-sample trainer (same seed -> same model) but runs
    #    the hot path on bit-packed, incrementally maintained state.
    tm = TsetlinMachine(
        n_classes=ds.n_classes,
        n_features=ds.n_features,
        n_clauses=30,          # clauses per class
        T=15,
        s=4.0,
        seed=42,
        backend="vectorized",
    )
    tm.fit(ds.X_train, ds.y_train, epochs=6)
    model = tm.export_model("kws6_quickstart")
    accuracy = model.evaluate(ds.X_test, ds.y_test)
    print(f"test accuracy: {accuracy:.3f}, model density: {model.density():.4%}")

    # 3. Generate the accelerator: 64-bit AXI-stream channel, pipelined
    #    class-sum and argmax stages, logic sharing on.
    design = generate_accelerator(model, AcceleratorConfig(bus_width=64))
    print(design.summary())

    # 4. Implement (the Vivado-substitute model).
    impl = implement_design(design)
    print(impl.summary())
    clock = impl.clock_mhz
    lat = design.latency
    print(
        f"latency: {lat.latency_us(clock):.3f} us, "
        f"throughput: {lat.throughput_inf_per_s(clock):,.0f} inf/s"
    )

    # 5. Verify: cycle-accurate simulation vs software semantics, Verilog
    #    round-trip, and protocol timing — the auto-debug flow.
    report = verify_design(design, ds.X_test[:16])
    print(f"verification: {report.summary()}")
    assert report.passed

    # 6. The RTL itself.
    verilog = emit_verilog(design.netlist)
    print(f"generated Verilog: {len(verilog.splitlines())} lines "
          f"({design.netlist.gate_count()} gates, "
          f"{design.netlist.register_count()} registers)")
    print("\n".join(verilog.splitlines()[:12]))


if __name__ == "__main__":
    main()
