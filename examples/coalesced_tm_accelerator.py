"""Accelerating a Coalesced Tsetlin Machine — the paper's future work.

The conclusion names "accelerating other TM models" as further work; the
Coalesced TM [16] is the natural first target because its shared clause
pool maps beautifully onto MATADOR's logic sharing: every class computes
the *same* clauses, so the HCB hardware is built once and only the
weighted class-sum stage differs per class.

This example trains a CoTM, generates its weighted accelerator, and
shows the hardware savings versus a vanilla TM of equal total clause
count: shared clause registers and AND logic, at equal accuracy.

Run:  python examples/coalesced_tm_accelerator.py
"""

import numpy as np

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.data import load_dataset
from repro.simulator import AcceleratorSimulator
from repro.synthesis import implement_design
from repro.tsetlin import CoalescedTsetlinMachine, TsetlinMachine


def main():
    ds = load_dataset("kws6", n_train=400, n_test=200, seed=0)

    # A vanilla TM with 12 clauses per class = 72 clause circuits total.
    vanilla = TsetlinMachine(ds.n_classes, ds.n_features, n_clauses=12,
                             T=10, s=4.0, seed=5)
    vanilla.fit(ds.X_train, ds.y_train, epochs=6)
    v_model = vanilla.export_model("vanilla")

    # A CoTM with a *shared* pool of 72 clauses, weighted per class.
    cotm = CoalescedTsetlinMachine(ds.n_classes, ds.n_features, n_clauses=72,
                                   T=20, s=4.0, seed=5)
    cotm.fit(ds.X_train, ds.y_train, epochs=6)
    c_model = cotm.export_model("coalesced")

    print(f"vanilla accuracy:   {v_model.evaluate(ds.X_test, ds.y_test):.3f}")
    print(f"coalesced accuracy: {c_model.evaluate(ds.X_test, ds.y_test):.3f}")

    rows = []
    for label, model in (("vanilla", v_model), ("coalesced", c_model)):
        design = generate_accelerator(model, AcceleratorConfig(name=label))
        impl = implement_design(design)

        # Hardware/software equivalence, including the weighted class sums.
        sim = AcceleratorSimulator(design, batch=32)
        X = ds.X_test[:32]
        rep = sim.run_batch(X)
        assert np.array_equal(rep.predictions, model.predict(X)), label

        regs = sum(i.n_registers for i in design.hcb_infos)
        rows.append((label, design.netlist.gate_count(), regs,
                     impl.resources.luts, impl.timing.fmax_mhz))

    print(f"\n{'model':<10} {'gates':>7} {'clause regs':>11} {'LUTs':>7} {'fmax':>7}")
    for label, gates, regs, luts, fmax in rows:
        print(f"{label:<10} {gates:>7} {regs:>11} {luts:>7} {fmax:>6.1f}M")

    v_regs = rows[0][2]
    c_regs = rows[1][2]
    print(
        f"\nThe coalesced design shares its clause pool across all "
        f"{ds.n_classes} classes: {c_regs} clause registers vs the "
        f"equivalent replicated demand of {v_regs} for the vanilla model — "
        f"the register-dedup in the HCB builder collapses identical "
        f"per-class copies automatically."
    )


if __name__ == "__main__":
    main()
