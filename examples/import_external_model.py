"""Importing an externally trained TM — the yellow flow of Fig. 6(b).

MATADOR can consume models trained outside the tool.  This example plays
both roles: a "research codebase" trains a TM and dumps raw automata
states to disk; the MATADOR flow then imports the dump, rebuilds the
include matrix, and carries it through generation and verification
without retraining.

Run:  python examples/import_external_model.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.flow import FlowConfig, MatadorFlow
from repro.tsetlin import TsetlinMachine


def train_external_model(ds, path):
    """The 'external research code': trains and dumps raw TA states."""
    tm = TsetlinMachine(ds.n_classes, ds.n_features, n_clauses=20, T=12,
                        s=4.0, seed=11)
    tm.fit(ds.X_train, ds.y_train, epochs=5)
    dump = {
        "name": "external_kws6",
        "states": tm.team.state.tolist(),
        "n_states": tm.team.n_states,
    }
    path.write_text(json.dumps(dump))
    return tm


def main():
    ds = load_dataset("kws6", n_train=400, n_test=200, seed=0)
    workdir = Path(tempfile.mkdtemp(prefix="matador_import_"))
    dump_path = workdir / "external_states.json"

    tm = train_external_model(ds, dump_path)
    print(f"external trainer accuracy: {tm.evaluate(ds.X_test, ds.y_test):.3f}")
    print(f"state dump written to {dump_path} "
          f"({dump_path.stat().st_size // 1024} KiB)")

    # The MATADOR side: import instead of training (model_path set).
    flow = MatadorFlow(FlowConfig(
        dataset="kws6", n_train=400, n_test=200,
        model_path=str(dump_path), name="imported_kws6",
        verify_samples=10,
    ))
    flow.load_data()
    model = flow.train()          # import path: no training happens
    print(f"imported model: {model}")

    # The imported include matrix must reproduce the external predictions.
    assert np.array_equal(model.predict(ds.X_test), tm.predict(ds.X_test))
    print("imported model matches the external trainer bit-for-bit")

    flow.generate()
    flow.implement()
    verification = flow.verify()
    print(flow.result.summary())
    assert verification.passed

    bundle = flow.deploy(workdir / "bundle")
    print(f"deployed {len(bundle)} files to {workdir / 'bundle'}")


if __name__ == "__main__":
    main()
