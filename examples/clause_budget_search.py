"""Automated clause-budget search + explainable predictions.

Combines two tool capabilities on the FMNIST-like garment classifier:

1. **MILEAGE-style search** (paper ref [17]): find the smallest clause
   budget that reaches a target accuracy — clause count is the dominant
   silicon cost, so this is the headline design-space question;
2. **interpretability** (Section II's motivation): for a test garment,
   print the exact boolean rules that produced the classification.

Run:  python examples/clause_budget_search.py
"""

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.data import load_dataset, train_val_split
from repro.model import class_evidence, explain_prediction, format_clause
from repro.synthesis import implement_design
from repro.tsetlin import search_clause_budget


def main():
    ds = load_dataset("fmnist", n_train=600, n_test=300, seed=0)
    X_tr, y_tr, X_val, y_val = train_val_split(ds, val_fraction=0.25, seed=1)

    print("searching for the smallest clause budget reaching 85% ...")
    # Candidates train on the vectorized backend (the search default):
    # backends are bit-identical per seed, so the chosen budget is the
    # same one the reference trainer would pick, found faster.
    result, tm = search_clause_budget(
        X_tr, y_tr, X_val, y_val,
        target_accuracy=0.85, start=8, max_clauses=128, epochs=5, s=5.0,
        backend="vectorized",
    )
    print(f"{'clauses':>8} {'accuracy':>9} {'includes':>9}")
    for p in sorted(result.evaluated, key=lambda p: p.n_clauses):
        marker = " <- chosen" if p.n_clauses == result.best.n_clauses else ""
        print(f"{p.n_clauses:>8} {p.accuracy:>9.3f} {p.include_count:>9}{marker}")
    print(f"target met: {result.target_met}\n")

    model = tm.export_model("fmnist_searched")
    test_acc = model.evaluate(ds.X_test, ds.y_test)
    print(f"held-out test accuracy: {test_acc:.3f}")

    design = generate_accelerator(model, AcceleratorConfig(name="fmnist_searched"))
    impl = implement_design(design)
    print(f"silicon cost at the chosen budget: {impl.resources.luts} LUTs, "
          f"{impl.resources.registers} FFs @ {impl.clock_mhz:.0f} MHz\n")

    # Why did the machine classify this garment the way it did?
    x = ds.X_test[0]
    explanation = explain_prediction(model, x)
    print("explanation for test sample 0 "
          f"(true class {int(ds.y_test[0])}):")
    print(explanation.describe(max_clauses=3))

    print(f"\nmost general learned rules for class {explanation.predicted_class}:")
    for k, expr in class_evidence(model, explanation.predicted_class, top_k=3):
        print(f"  clause {k}: {format_clause(expr)[:100]}")


if __name__ == "__main__":
    main()
