"""Design space exploration — what the MATADOR GUI guides users through,
now powered by the ``repro.sweep`` subsystem.

For the CIFAR-2 vehicles-vs-animals task this example fans a grid over
the two main design knobs:

* clause budget (accuracy vs LUTs at constant throughput), and
* channel bandwidth (throughput vs packets at constant accuracy),

across a process pool with an on-disk result cache, then prints the
evaluated points with their Pareto-front membership so a user can pick
the operating point for their resource/latency budget.  Re-running the
script resumes from the cache and completes in milliseconds — delete
``.matador_sweep_example`` to recompute.

Run:  python examples/design_space_exploration.py
"""

from repro.flow import FlowConfig
from repro.sweep import SweepSpec, available_cpus, run_sweep

CACHE_DIR = ".matador_sweep_example"


def main():
    jobs = min(4, available_cpus())
    base = FlowConfig(
        dataset="cifar2", n_train=500, n_test=250, s=5.0, epochs=5,
        train_seed=7,
    )

    print("=== sweep 1: clause budget (accuracy vs area) ===")
    spec = SweepSpec.from_grid(
        base=base,
        clauses_per_class=[10, 20, 40, 80],
        T=[12],
    )
    result = run_sweep(spec, jobs=jobs, cache_dir=CACHE_DIR, resume=True)
    print(result.table(columns=(
        "clauses_per_class", "accuracy", "luts", "latency_us",
        "total_power_w",
    )))
    print(result.summary())

    # Pick the smallest budget within 2% of the best accuracy.
    best_acc = max(p.metric("accuracy") for p in result.ok_points)
    chosen = min(
        (p for p in result.ok_points
         if p.metric("accuracy") >= best_acc - 0.02),
        key=lambda p: p.config["clauses_per_class"],
    )
    budget = chosen.config["clauses_per_class"]
    print(f"\nchosen operating point: {budget} clauses/class "
          f"({100 * chosen.metric('accuracy'):.1f}% @ "
          f"{chosen.metric('luts')} LUTs)\n")

    print("=== sweep 2: channel bandwidth (latency vs interface) ===")
    spec = SweepSpec.from_grid(
        base=base,
        clauses_per_class=[budget],
        T=[12],
        bus_width=[8, 16, 32, 64],
    )
    result = run_sweep(spec, jobs=jobs, cache_dir=CACHE_DIR, resume=True)
    print(result.table(columns=(
        "bus_width", "n_packets", "latency_us", "throughput_inf_per_s",
        "luts", "clock_mhz",
    )))

    print("\nThe initiation interval is exactly ceil(features / W) "
          "packets: the architecture is bandwidth-driven, so the channel "
          "— not the model size — sets the throughput.")


if __name__ == "__main__":
    main()
