"""Design space exploration — what the MATADOR GUI guides users through.

For an image-classification task (the CIFAR-2 vehicles-vs-animals set)
this example sweeps the two main design knobs:

* clause budget (accuracy vs LUTs at constant throughput), and
* channel bandwidth (throughput vs packets at constant accuracy),

then prints the resulting design points so a user can pick the
operating point for their resource/latency budget — the "best model size
and performance for the given application" the paper derives from the
bandwidth-driven property.

Run:  python examples/design_space_exploration.py
"""

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.data import load_dataset
from repro.synthesis import implement_design
from repro.tsetlin import TsetlinMachine


def row_format(rows):
    cols = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in cols}
    lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def sweep_clauses(ds, budgets):
    rows = []
    models = {}
    for budget in budgets:
        tm = TsetlinMachine(ds.n_classes, ds.n_features, n_clauses=budget,
                            T=max(6, budget // 3), s=5.0, seed=7,
                            backend="vectorized")
        tm.fit(ds.X_train, ds.y_train, epochs=5)
        model = tm.export_model(f"cifar2_c{budget}")
        models[budget] = model
        design = generate_accelerator(model, AcceleratorConfig(name=f"c{budget}"))
        impl = implement_design(design)
        rows.append({
            "clauses/class": budget,
            "accuracy (%)": round(100 * model.evaluate(ds.X_test, ds.y_test), 1),
            "LUTs": impl.resources.luts,
            "regs": impl.resources.registers,
            "fmax (MHz)": round(impl.timing.fmax_mhz, 1),
            "II (cyc)": design.latency.initiation_interval,
        })
    return rows, models


def sweep_bandwidth(model, widths):
    rows = []
    for width in widths:
        design = generate_accelerator(
            model, AcceleratorConfig(bus_width=width, name=f"bw{width}")
        )
        impl = implement_design(design)
        clock = impl.clock_mhz
        rows.append({
            "bus (bits)": width,
            "packets": design.n_packets,
            "latency (us)": round(design.latency.latency_us(clock), 3),
            "throughput (inf/s)": f"{design.latency.throughput_inf_per_s(clock):,.0f}",
            "LUTs": impl.resources.luts,
            "clock (MHz)": round(clock, 1),
        })
    return rows


def main():
    ds = load_dataset("cifar2", n_train=500, n_test=250, seed=0)
    print(f"dataset: {ds.name} ({ds.n_features} features, "
          f"classes: {ds.metadata['classes']})\n")

    print("=== sweep 1: clause budget (accuracy vs area) ===")
    clause_rows, models = sweep_clauses(ds, budgets=(10, 20, 40, 80))
    print(row_format(clause_rows))

    # Pick the smallest budget within 2% of the best accuracy.
    best = max(r["accuracy (%)"] for r in clause_rows)
    chosen = next(r for r in clause_rows if r["accuracy (%)"] >= best - 2.0)
    budget = chosen["clauses/class"]
    print(f"\nchosen operating point: {budget} clauses/class "
          f"({chosen['accuracy (%)']}% @ {chosen['LUTs']} LUTs)\n")

    print("=== sweep 2: channel bandwidth (latency vs interface) ===")
    bw_rows = sweep_bandwidth(models[budget], widths=(8, 16, 32, 64))
    print(row_format(bw_rows))

    print("\nThe II column is exactly ceil(1024 / W) packets: the "
          "architecture is bandwidth-driven, so the channel — not the "
          "model size — sets the throughput.")


if __name__ == "__main__":
    main()
