"""Fabric quickstart: shard serving across replicas, promote rolling.

The scale-out tour, end to end:

1. train a Tsetlin Machine and publish it to a versioned Registry,
2. build a ReplicaPool of worker processes over the published snapshot
   and front it with a routing Gateway,
3. fan single-sample request traffic across the fleet (deterministic
   key routing, bounded queue, per-replica micro-batches),
4. train a challenger on fresher data and promote it replica-by-replica
   with RollingPromoter — every replica is drained, swapped and
   health-checked in turn, with zero dropped requests,
5. roll the whole fleet back.

Run:  PYTHONPATH=src python examples/fabric_quickstart.py
"""

import numpy as np

from repro.data import load_dataset
from repro.serving import Gateway, Registry, ReplicaPool
from repro.streaming import RollingPromoter
from repro.tsetlin import TsetlinMachine


def train(ds, n_samples, epochs, seed):
    tm = TsetlinMachine(
        n_classes=ds.n_classes,
        n_features=ds.n_features,
        n_clauses=24,
        T=15,
        s=4.0,
        seed=seed,
        backend="vectorized",
    )
    tm.fit(ds.X_train[:n_samples], ds.y_train[:n_samples], epochs=epochs)
    return tm


def main():
    # 1. Train a champion on the data available at deploy time and
    #    publish it (frozen snapshot, v1).
    ds = load_dataset("kws6", n_train=400, n_test=200, seed=0)
    champion = train(ds, n_samples=120, epochs=2, seed=42)
    registry = Registry()
    registry.publish("kws6", champion)

    # 2. A fleet of 3 replica workers behind a routing gateway.
    with ReplicaPool.from_registry(registry, "kws6", n_replicas=3,
                                   max_batch=32) as pool:
        gateway = Gateway(pool, max_batch=32, max_queue=512)
        print(f"fleet up: {pool!r}")

        # 3. Fan 600 single-sample requests across the fleet.
        X = ds.X_test[np.arange(600) % len(ds.X_test)]
        y = ds.y_test[np.arange(600) % len(ds.y_test)]
        tickets = gateway.submit_many(X)
        gateway.flush()
        accuracy = np.mean([t.prediction for t in tickets] == y)
        by_replica = {i: r.n_samples for i, r in enumerate(pool.replicas)}
        print(f"served {len(tickets)} requests, accuracy {accuracy:.4f}, "
              f"per-replica load {by_replica}")

        # 4. A challenger trained on everything since rolls through the
        #    fleet.
        challenger = train(ds, n_samples=len(ds.X_train), epochs=4, seed=42)
        promoter = RollingPromoter(registry, "kws6", gateway)
        record = promoter.promote(challenger, ds.X_test, ds.y_test)
        print(f"promotion: champion {record['champion_accuracy']:.4f} vs "
              f"challenger {record['challenger_accuracy']:.4f} -> "
              f"promoted={record['promoted']}")
        if record["promoted"]:
            print(f"  rolled: {record['roll']}")
            print(f"  fleet versions now {pool.versions()}")

            # 5. And back again: fleet-wide rollback, v2 stays auditable.
            rollback = promoter.rollback()
            print(f"rollback: restored v{rollback['restored_version']}, "
                  f"fleet versions {pool.versions()}, "
                  f"registry keeps {registry.versions('kws6')}")

        report = gateway.report()
        print(f"fabric stats: {report['fabric']}")


if __name__ == "__main__":
    main()
