"""Audio keyword spotting on the edge — the paper's KWS6 scenario.

Walks the full path from raw audio to a deployed accelerator bundle:

* synthesize keyword utterances ("yes", "no", "up", "down", "left",
  "right") and run the filterbank frontend (29 frames x 13 log energies
  -> 377 one-bit features, matching the paper's FINN KWS topology input);
* train the TM at a KWS-appropriate clause budget;
* run the end-to-end MATADOR flow (generate, implement, verify);
* stream a test set through the cycle-accurate simulator to measure the
  real initiation interval and latency;
* write the deployment bundle (Verilog + testbench + host driver).

Run:  python examples/audio_keyword_spotting.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.flow import FlowConfig, MatadorFlow
from repro.simulator import AcceleratorSimulator


def main():
    config = FlowConfig(
        dataset="kws6",
        n_train=500,
        n_test=250,
        clauses_per_class=40,
        T=20,
        s=4.0,
        epochs=8,
        bus_width=64,
        name="kws6_accel",
        verify_samples=12,
    )
    flow = MatadorFlow(config, progress=lambda s, t: print(f"  [{s}] {t:.2f}s"))
    result = flow.run()
    print(result.summary())
    assert result.verification.passed

    # What the keywords look like to the accelerator.
    ds = result.dataset
    print(f"\nkeywords: {ds.metadata['keywords']}")
    print(f"frontend: {ds.metadata['frames']} frames x {ds.metadata['bands']} "
          f"filterbank bands @ {ds.metadata['sample_rate']} Hz")

    # Stream 20 utterances back-to-back and measure the real timing.
    design = result.design
    clock = result.implementation.clock_mhz
    sim = AcceleratorSimulator(design, batch=1)
    stream = sim.run_stream(ds.X_test[:20])
    correct = float(np.mean(stream.predictions == ds.y_test[:20]))
    print(f"\nstreamed 20 utterances @ {clock:.0f} MHz:")
    print(f"  accuracy on stream:   {correct:.2f}")
    print(f"  first result latency: {stream.first_result_cycle} cycles "
          f"({stream.first_result_cycle / clock:.3f} us)")
    print(f"  initiation interval:  {stream.initiation_interval:.1f} cycles")
    print(f"  throughput:           {stream.throughput_inf_per_s(clock):,.0f} inf/s")

    # Deployment bundle.
    outdir = Path(tempfile.mkdtemp(prefix="matador_kws6_"))
    files = flow.deploy(outdir)
    print(f"\ndeployment bundle ({outdir}):")
    for f in files:
        print(f"  {f.name}")


if __name__ == "__main__":
    main()
