"""Continual learning quickstart: drift, detection, hot promotion.

The full `repro.streaming` loop on a synthetic drifting stream:

1. replay a dataset as micro-batched request traffic,
2. inject an abrupt concept drift (label permutation) at a known onset,
3. warm up and publish a champion, serve the stream through the
   Batcher,
4. detect the accuracy collapse from served predictions vs delayed
   labels (ADWIN-style windowed mean-shift test),
5. train a challenger online (`partial_fit`) on post-detection traffic,
   shadow-evaluate it against the live champion, and hot-swap it
   through the versioned Registry with zero dropped requests,
6. then demonstrate rollback to the prior version.

Run:  python examples/online_learning.py
"""

from repro.data import load_dataset
from repro.streaming import (
    DriftDetector,
    DriftStream,
    ReplayStream,
    StreamSession,
    permute_labels,
)
from repro.tsetlin import TsetlinMachine

DRIFT_AT = 1200


def main():
    # 1-2. A drifting stream over the KWS6 stand-in: labels permute at
    # sample 1200, so the deployed concept abruptly stops being true.
    ds = load_dataset("kws6", n_train=500, n_test=100, seed=0)
    stream = DriftStream(
        ReplayStream(ds, batch_size=32, n_samples=2800, seed=5),
        permute_labels(ds.n_classes, seed=3),
        drift_at=DRIFT_AT,
    )

    # 3-5. The standing loop. The factory builds the champion (seed) and
    # every challenger (seed + k); challengers learn online from
    # post-detection traffic only.
    def factory(seed):
        return TsetlinMachine(
            n_classes=ds.n_classes, n_features=ds.n_features,
            n_clauses=32, T=12, s=4.0, seed=seed, backend="vectorized",
        )

    session = StreamSession(
        stream, factory, warmup=400, name="kws6",
        detector=DriftDetector(window=400, check_every=8),
        max_batch=32, adapt_window=400, eval_window=200, seed=42,
    )
    report = session.run()

    print(f"served   : {report['served']}/{report['requests']} requests "
          f"({report['unresolved']} unresolved)")
    print(f"drift    : induced @ {report['true_drift_at']}, detected @ "
          f"{report['detections']} (delay {report['detection_delay']})")
    for promo in report["promotions"]:
        print(f"promoted : v{promo['champion_version']} -> "
              f"v{promo['new_version']}  (shadow accuracy "
              f"{promo['champion_accuracy']:.2f} -> "
              f"{promo['challenger_accuracy']:.2f})")
    for key, value in report["accuracy"].items():
        if value is not None:
            print(f"accuracy : {key:26s} {value:.4f}")

    # 6. Rollback: the prior version is still in the registry; pin it
    # back in and hot-swap the serving engine.
    if report["promotions"]:
        record = session.rollback()
        print(f"rollback : restored v{record['restored_version']} "
              f"(v{record['retracted_version']} stays queryable)")
        print(f"live     : v{session.batcher.engine.version}, registry "
              f"versions {session.registry.versions('kws6')}")


if __name__ == "__main__":
    main()
