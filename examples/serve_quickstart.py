"""Serving quickstart: publish a model and serve micro-batched traffic.

The serving tour, end to end:

1. train a Tsetlin Machine (the vectorized backend),
2. publish a frozen snapshot to a versioned Registry,
3. serve single-sample requests through the micro-batching Batcher
   (packed-literal engine under the hood),
4. keep training and publish v2 — the live engine is unaffected until
   you switch versions,
5. attach a DifferentialChecker so a sampled fraction of *served*
   batches is replayed through the cycle-accurate simulator of the
   generated accelerator and compared bit for bit.

Run:  python examples/serve_quickstart.py
"""

import time

from repro.accelerator import AcceleratorConfig, generate_accelerator
from repro.data import load_dataset
from repro.serving import Batcher, DifferentialChecker, Registry
from repro.tsetlin import TsetlinMachine


def main():
    # 1. Train.
    ds = load_dataset("kws6", n_train=400, n_test=200, seed=0)
    tm = TsetlinMachine(
        n_classes=ds.n_classes,
        n_features=ds.n_features,
        n_clauses=24,
        T=15,
        s=4.0,
        seed=42,
        backend="vectorized",
    )
    tm.fit(ds.X_train, ds.y_train, epochs=4)
    print(f"trained: accuracy {tm.evaluate(ds.X_test, ds.y_test):.4f}")

    # 2. Publish a frozen snapshot.  The include matrix is copied and
    #    bit-packed once; training can continue on `tm` without touching
    #    what is served.
    registry = Registry()
    engine = registry.publish("kws6", tm)
    print(f"published: {engine!r}")

    # 3 + 5. A batcher with a differential checker attached: requests
    #    coalesce into batches of <= 32 (or a 2 ms deadline), and ~25% of
    #    served batches are replayed through the cycle-accurate netlist
    #    simulation of the generated accelerator.
    design = generate_accelerator(
        tm.export_model("kws6"), AcceleratorConfig(name="kws6_serve")
    )
    checker = DifferentialChecker(design, fraction=0.25, seed=0)
    batcher = Batcher(engine, max_batch=32, max_delay=0.002,
                      observers=[checker])

    t0 = time.perf_counter()
    tickets = [batcher.submit(x) for x in ds.X_test]
    batcher.flush()
    elapsed = time.perf_counter() - t0
    correct = sum(
        t.result() == int(y) for t, y in zip(tickets, ds.y_test)
    )
    print(
        f"served {len(tickets)} requests as {batcher.stats.n_batches} "
        f"batches (mean size {batcher.stats.mean_batch_size:.1f}) in "
        f"{elapsed * 1e3:.1f} ms -> {len(tickets) / elapsed:.0f} req/s, "
        f"accuracy {correct / len(tickets):.4f}"
    )
    print(checker.summary())

    # 4. Keep training, publish v2; v1 stays pinned until you switch.
    tm.fit(ds.X_train, ds.y_train, epochs=2)
    v2 = registry.publish("kws6", tm)
    print(f"versions now: {registry.versions('kws6')}; "
          f"latest acc {v2.evaluate(ds.X_test, ds.y_test):.4f}, "
          f"pinned v1 acc "
          f"{registry.engine('kws6', version=1).evaluate(ds.X_test, ds.y_test):.4f}")


if __name__ == "__main__":
    main()
